package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"blockwatch/internal/metrics"
)

// Admin-plane scraping: every daemon's -admin listener exposes /healthz
// and its metrics registry; the fleet view is those scraped per member
// and (for metrics) merged into one exposition, so one dashboard reads
// the whole fleet as if it were a single daemon. `bwfleet metrics`
// drives this.

// adminURL normalizes an admin address into an http URL for path.
func adminURL(admin, path string) string {
	if !strings.Contains(admin, "://") {
		admin = "http://" + admin
	}
	return strings.TrimSuffix(admin, "/") + path
}

func adminGet(admin, path string, timeout time.Duration) (*http.Response, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get(adminURL(admin, path))
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// ScrapeHealthz probes a member's admin /healthz. ok is true for a 200
// ("ok"); false with the body text for anything else (a draining daemon
// answers 503 "draining").
func ScrapeHealthz(admin string, timeout time.Duration) (ok bool, status string, err error) {
	resp, err := adminGet(admin, "/healthz", timeout)
	if err != nil {
		return false, "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	return resp.StatusCode == http.StatusOK, strings.TrimSpace(string(body)), nil
}

// ScrapeSnapshot fetches a member's metrics registry as a decoded
// snapshot (the admin /metrics.json endpoint).
func ScrapeSnapshot(admin string, timeout time.Duration) (*metrics.Snapshot, error) {
	resp, err := adminGet(admin, "/metrics.json", timeout)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s/metrics.json: %s", admin, resp.Status)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("fleet: decoding %s/metrics.json: %w", admin, err)
	}
	return &snap, nil
}

// MemberMetrics is one member's scrape outcome.
type MemberMetrics struct {
	Member
	Snapshot *metrics.Snapshot
	Err      error
}

// ScrapeAll scrapes every member that has an admin address, returning
// per-member outcomes (configuration order) and the merged snapshot of
// the successful ones. Members without an admin address are skipped
// with a descriptive error in their slot.
func ScrapeAll(members []Member, timeout time.Duration) ([]MemberMetrics, *metrics.Snapshot) {
	out := make([]MemberMetrics, len(members))
	var snaps []*metrics.Snapshot
	for i, m := range members {
		out[i].Member = m
		if m.Admin == "" {
			out[i].Err = fmt.Errorf("fleet: member %s has no admin address", m.Addr)
			continue
		}
		snap, err := ScrapeSnapshot(m.Admin, timeout)
		out[i].Snapshot, out[i].Err = snap, err
		if err == nil {
			snaps = append(snaps, snap)
		}
	}
	return out, metrics.MergeSnapshots(snaps...)
}
