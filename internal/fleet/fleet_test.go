package fleet

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blockwatch/internal/adminhttp"
	"blockwatch/internal/core"
	"blockwatch/internal/inject"
	"blockwatch/internal/interp"
	"blockwatch/internal/ir"
	"blockwatch/internal/metrics"
	"blockwatch/internal/monitor"
	"blockwatch/internal/remote"
	"blockwatch/internal/splash"
)

const testThreads = 4

func TestParseMembers(t *testing.T) {
	got, err := ParseMembers("127.0.0.1:7000,127.0.0.1:7001=127.0.0.1:9001, unix:/tmp/bw.sock ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{
		{Addr: "127.0.0.1:7000"},
		{Addr: "127.0.0.1:7001", Admin: "127.0.0.1:9001"},
		{Addr: "unix:/tmp/bw.sock"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseMembers = %+v, want %+v", got, want)
	}
	for _, bad := range []string{
		"",
		"a,,b",
		"a,a",
		"a=x,a=y",
		"=admin",
		"addr=",
	} {
		if _, err := ParseMembers(bad); err == nil {
			t.Errorf("ParseMembers(%q) succeeded, want error", bad)
		}
	}
}

func testPool(t *testing.T, addrs ...string) *Pool {
	t.Helper()
	ms := make([]Member, len(addrs))
	for i, a := range addrs {
		ms[i] = Member{Addr: a}
	}
	p, err := NewPool(Config{Members: ms, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestRankDeterministicAndConsistent checks the two properties the
// failover design leans on: the ranking is a pure function of (members,
// key), and removing one member never reorders the others (so a failed
// primary's sessions move to their existing second choice, and only
// they move).
func TestRankDeterministicAndConsistent(t *testing.T) {
	addrs := []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000", "10.0.0.4:7000"}
	full := testPool(t, addrs...)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("prog-%d", i)
		r1, r2 := full.Rank(key), full.Rank(key)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("Rank(%q) is not deterministic: %v vs %v", key, r1, r2)
		}
		if len(r1) != len(addrs) {
			t.Fatalf("Rank(%q) returned %d members, want %d", key, len(r1), len(addrs))
		}
		// Drop the primary: the survivors' relative order must not change.
		var rest []string
		for _, a := range addrs {
			if a != r1[0].Addr {
				rest = append(rest, a)
			}
		}
		sub := testPool(t, rest...)
		r3 := sub.Rank(key)
		for j, m := range r3 {
			if m.Addr != r1[j+1].Addr {
				t.Fatalf("Rank(%q) without %s reordered survivors: got %v, full ranking %v",
					key, r1[0].Addr, r3, r1)
			}
		}
	}
}

func TestRankSpread(t *testing.T) {
	addrs := []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000", "10.0.0.4:7000"}
	p := testPool(t, addrs...)
	const keys = 256
	counts := make(map[string]int)
	for i := 0; i < keys; i++ {
		counts[p.Rank(fmt.Sprintf("prog-%d", i))[0].Addr]++
	}
	for _, a := range addrs {
		n := counts[a]
		// Expected 64 of 256; the bounds only catch gross skew (the kind
		// the unmixed-hash bug produced: everything on one member).
		if n < keys/16 || n > keys/2 {
			t.Errorf("member %s is primary for %d of %d keys — placement badly skewed: %v",
				a, n, keys, counts)
		}
	}
}

func TestRankExcludesDownMembers(t *testing.T) {
	addrs := []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"}
	p := testPool(t, addrs...)
	p.observe(addrs[1], fmt.Errorf("connection refused"))
	for i := 0; i < 16; i++ {
		rank := p.Rank(fmt.Sprintf("prog-%d", i))
		if len(rank) != 2 {
			t.Fatalf("Rank returned %d members with one down, want 2", len(rank))
		}
		for _, m := range rank {
			if m.Addr == addrs[1] {
				t.Fatalf("down member %s still ranked", addrs[1])
			}
		}
	}
	// All down: the unweighted fallback must still rank everybody.
	p.observe(addrs[0], fmt.Errorf("refused"))
	p.observe(addrs[2], fmt.Errorf("refused"))
	if rank := p.Rank("prog-0"); len(rank) != 3 {
		t.Fatalf("all-down fallback ranked %d members, want all 3", len(rank))
	}
	// A success revives immediately.
	p.observe(addrs[1], nil)
	if rank := p.Rank("prog-0"); len(rank) != 1 || rank[0].Addr != addrs[1] {
		t.Fatalf("after revival Rank = %v, want only %s", rank, addrs[1])
	}
}

// TestSessionFailoverOrder walks a session's selector through the
// failure of every member: each fault moves it to the next-ranked one,
// and exhausting the fleet wipes the slate rather than giving up.
func TestSessionFailoverOrder(t *testing.T) {
	addrs := []string{"10.0.0.1:7000", "10.0.0.2:7000", "10.0.0.3:7000"}
	p := testPool(t, addrs...)
	rank := p.Rank("prog")
	s := p.Session("prog")
	for i := 0; i < len(rank); i++ {
		got := s.Next()
		if got != rank[i].Addr {
			t.Fatalf("attempt %d dialed %s, want rank[%d]=%s", i, got, i, rank[i].Addr)
		}
		if cur := s.Current(); cur != got {
			t.Fatalf("Current() = %s after Next() = %s", cur, got)
		}
		s.Observe(got, fmt.Errorf("dial refused"))
	}
	// Every member failed once for this session; the ban slate wipes.
	// (Health also marked all members down, so ranking is the fallback —
	// same order, since all weights are equal again.)
	if got := s.Next(); got != rank[0].Addr {
		t.Fatalf("after exhausting the fleet Next() = %s, want wiped slate %s", got, rank[0].Addr)
	}
	// A success unbans and pins the session while the member stays up.
	s.Observe(rank[0].Addr, nil)
	if got := s.Next(); got != rank[0].Addr {
		t.Fatalf("after success Next() = %s, want %s", got, rank[0].Addr)
	}
}

// TestProbeHealthDrainingAndDown exercises the probe path against a
// real daemon with a real admin listener: up -> draining (healthz 503)
// -> up -> down (listener closed).
func TestProbeHealthDrainingAndDown(t *testing.T) {
	srv := remote.NewServer(remote.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	var state atomic.Value
	state.Store("")
	adm, err := adminhttp.StartWithHealth("127.0.0.1:0", nil, func() string { return state.Load().(string) })
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()

	other := remote.NewServer(remote.ServerConfig{})
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go other.Serve(ln2)
	defer other.Close()

	reg := metrics.NewRegistry()
	p, err := NewPool(Config{
		Members: []Member{
			{Addr: ln.Addr().String(), Admin: adm.Addr()},
			{Addr: ln2.Addr().String()},
		},
		ProbeInterval: -1,
		ProbeTimeout:  time.Second,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	h := p.Probe()
	if h[0].State != "up" || h[0].Weight <= 0 {
		t.Fatalf("member 0 after clean probe: %+v, want up with positive weight", h[0])
	}

	state.Store("draining")
	h = p.Probe()
	if h[0].State != "draining" || h[0].Weight != 0 {
		t.Fatalf("member 0 with healthz 503: %+v, want draining with weight 0", h[0])
	}
	if rank := p.Rank("prog"); len(rank) != 1 || rank[0].Addr != ln2.Addr().String() {
		t.Fatalf("draining member still ranked: %v", rank)
	}

	state.Store("")
	if h = p.Probe(); h[0].State != "up" {
		t.Fatalf("member 0 after drain lifted: %+v, want up", h[0])
	}

	srv.Close()
	if h = p.Probe(); h[0].State != "down" || h[0].LastErr == "" {
		t.Fatalf("member 0 with wire listener closed: %+v, want down with an error", h[0])
	}

	if v := reg.Gauge("bw_fleet_members", "").Value(); v != 2 {
		t.Errorf("bw_fleet_members = %d, want 2", v)
	}
	if v := reg.Gauge("bw_fleet_members_up", "").Value(); v != 1 {
		t.Errorf("bw_fleet_members_up = %d, want 1", v)
	}
	if v := reg.Counter("bw_fleet_probes_total", "").Value(); v != 8 {
		t.Errorf("bw_fleet_probes_total = %d, want 8 (4 rounds x 2 members)", v)
	}
}

// TestPoolConcurrency hammers probing, ranking, and session feedback
// from many goroutines; the race detector is the assertion.
func TestPoolConcurrency(t *testing.T) {
	srv := remote.NewServer(remote.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	p := testPool(t, ln.Addr().String(), "10.255.0.1:1")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch i % 3 {
				case 0:
					p.Probe()
				case 1:
					p.Rank(fmt.Sprintf("k-%d-%d", g, i))
				default:
					s := p.Session(fmt.Sprintf("s-%d-%d", g, i))
					addr := s.Next()
					s.Observe(addr, fmt.Errorf("boom"))
					s.Next()
					s.Observe(addr, nil)
				}
			}
		}(g)
	}
	wg.Wait()
}

// --- end-to-end: fleet-placed monitoring sessions ---

func kernelPlans(t testing.TB, name string) (*ir.Module, map[int]*core.CheckPlan) {
	t.Helper()
	prog, err := splash.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := prog.Compile()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return mod, a.Plans
}

func runInProcess(t testing.TB, mod *ir.Module, plans map[int]*core.CheckPlan, fault *inject.Fault) *interp.Result {
	t.Helper()
	opts := interp.Options{Threads: testThreads, Mode: interp.MonitorActive, Plans: plans}
	if fault != nil {
		opts.Fault = inject.NewSingle(*fault)
	}
	res, err := interp.Run(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// startFleet starts n daemons and a probe-less pool over them.
func startFleet(t testing.TB, n int) (*Pool, []*remote.Server, []string) {
	t.Helper()
	srvs := make([]*remote.Server, n)
	addrs := make([]string, n)
	ms := make([]Member, n)
	for i := 0; i < n; i++ {
		srv := remote.NewServer(remote.ServerConfig{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(srv.Close)
		srvs[i], addrs[i] = srv, ln.Addr().String()
		ms[i] = Member{Addr: addrs[i]}
	}
	p, err := NewPool(Config{Members: ms, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p, srvs, addrs
}

// runFleet runs one monitored execution with the session placed (and,
// under injected faults, failed over) by the pool.
func runFleet(t testing.TB, pool *Pool, name string, mod *ir.Module, plans map[int]*core.CheckPlan, fault *inject.Fault) *interp.Result {
	t.Helper()
	client, err := remote.DialSelector(pool.Session(name), remote.ClientConfig{
		Program: name, NumThreads: testThreads, Plans: plans,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	opts := interp.Options{Threads: testThreads, Mode: interp.MonitorActive, Plans: plans, Sink: client}
	if fault != nil {
		opts.Fault = inject.NewSingle(*fault)
	}
	res, err := interp.Run(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compareRuns mirrors the remote loopback tests: identical executions
// (guarded by the event streams) must produce byte-identical verdicts.
func compareRuns(t *testing.T, label string, local, fleet *interp.Result) bool {
	t.Helper()
	return compareRunsHealth(t, label, local, fleet, monitor.Healthy)
}

// compareRunsHealth is compareRuns with an explicit expected health:
// failover drills end Degraded (a transport fault happened) while the
// verdict and stats must still be byte-identical.
func compareRunsHealth(t *testing.T, label string, local, fleet *interp.Result, want monitor.HealthState) bool {
	t.Helper()
	if !reflect.DeepEqual(local.EventCounts, fleet.EventCounts) ||
		!reflect.DeepEqual(local.BranchCounts, fleet.BranchCounts) {
		t.Logf("%s: faulty execution diverged under different sink timing — comparison skipped", label)
		return false
	}
	if local.Detected != fleet.Detected {
		t.Errorf("%s: Detected: in-process %t, fleet %t", label, local.Detected, fleet.Detected)
	}
	if !reflect.DeepEqual(local.Violations, fleet.Violations) {
		t.Errorf("%s: violations differ\n in-process: %v\n fleet:      %v", label, local.Violations, fleet.Violations)
	}
	ls, fs := local.MonitorStats, fleet.MonitorStats
	if ls.Events != fs.Events || ls.Instances != fs.Instances || ls.Flushes != fs.Flushes {
		t.Errorf("%s: monitor stats differ: in-process %+v, fleet %+v", label, ls, fs)
	}
	if fleet.MonitorHealth != want {
		t.Errorf("%s: fleet health = %v, want %v", label, fleet.MonitorHealth, want)
	}
	return true
}

// TestFleetMatchesInProcessAllKernels is the acceptance sweep: every
// SPLASH kernel, clean and with deterministic injected faults, against
// fleets of 1, 2, and 4 members — every comparable verdict identical to
// the in-process monitor, with sessions actually spread across members.
func TestFleetMatchesInProcessAllKernels(t *testing.T) {
	for _, members := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("members=%d", members), func(t *testing.T) {
			pool, srvs, _ := startFleet(t, members)
			anyDetected := false
			var sessions uint64
			for _, name := range splash.Names() {
				mod, plans := kernelPlans(t, name)

				clean := runInProcess(t, mod, plans, nil)
				if clean.Detected {
					t.Fatalf("%s: clean run detected a violation (false positive)", name)
				}
				compareRuns(t, name+"/clean", clean, runFleet(t, pool, name, mod, plans, nil))
				sessions++

				for _, frac := range []uint64{2, 5} {
					seq := clean.BranchCounts[1] / frac
					if seq == 0 {
						continue
					}
					fault := &inject.Fault{Type: inject.BranchFlip, Thread: 1, Seq: seq}
					local := runInProcess(t, mod, plans, fault)
					res := runFleet(t, pool, fmt.Sprintf("%s@%d", name, seq), mod, plans, fault)
					sessions++
					if compareRuns(t, fmt.Sprintf("%s/fault@%d/m%d", name, seq, members), local, res) && local.Detected {
						anyDetected = true
					}
				}
			}
			if !anyDetected {
				t.Error("no injected fault was detected by any kernel — equality checks were vacuous")
			}
			var served, busiest uint64
			for _, srv := range srvs {
				served += srv.Sessions()
				if srv.Sessions() > busiest {
					busiest = srv.Sessions()
				}
			}
			if served != sessions {
				t.Errorf("fleet served %d sessions, clients opened %d", served, sessions)
			}
			if members > 1 && busiest == sessions {
				t.Errorf("all %d sessions landed on one of %d members — placement is not spreading", sessions, members)
			}
		})
	}
}

// TestFleetFailoverOnMemberKill is the mid-run failover drill: two
// members, the one serving the session is hard-killed after a few
// frames, and the verdict must still be byte-identical — the spool
// replays the whole stream to the surviving member. Clean and faulty.
func TestFleetFailoverOnMemberKill(t *testing.T) {
	mod, plans := kernelPlans(t, "fft")
	cleanRef := runInProcess(t, mod, plans, nil)
	fault := &inject.Fault{Type: inject.BranchFlip, Thread: 1, Seq: cleanRef.BranchCounts[1] / 2}
	for _, tc := range []struct {
		label string
		fault *inject.Fault
	}{
		{"clean", nil},
		{"faulty", fault},
	} {
		t.Run(tc.label, func(t *testing.T) {
			pool, srvs, addrs := startFleet(t, 2)
			local := runInProcess(t, mod, plans, tc.fault)

			sess := pool.Session("kill-" + tc.label)
			byAddr := make(map[string]*remote.Server, len(addrs))
			for i, a := range addrs {
				byAddr[a] = srvs[i]
			}
			ij := inject.NewNetInjector(inject.NetFaultPlan{Kind: inject.NetKill, AfterFrames: 4})
			ij.OnKill = func() {
				if srv := byAddr[sess.Current()]; srv != nil {
					srv.Close()
				}
			}
			client, err := remote.DialSelector(sess, remote.ClientConfig{
				Program:       "kill-" + tc.label,
				NumThreads:    testThreads,
				Plans:         plans,
				WrapConn:      ij.Wrap,
				SpoolPath:     filepath.Join(t.TempDir(), "run.bwspool"),
				ResultTimeout: 2 * time.Second,
				Retry: remote.RetryConfig{
					Attempts:    4,
					BaseDelay:   time.Millisecond,
					MaxDelay:    20 * time.Millisecond,
					DialTimeout: time.Second,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer client.Close()
			opts := interp.Options{Threads: testThreads, Mode: interp.MonitorActive, Plans: plans, Sink: client}
			if tc.fault != nil {
				opts.Fault = inject.NewSingle(*tc.fault)
			}
			res, err := interp.Run(mod, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !ij.Fired() {
				t.Fatal("the kill never fired — the run ended before the target frame")
			}
			if !compareRunsHealth(t, "kill/"+tc.label, local, res, monitor.Degraded) {
				t.Fatal("faulty execution diverged; kill drill needs the deterministic stream")
			}
			if client.Reconnects() < 1 {
				t.Errorf("Reconnects() = %d, want >= 1 (failover to the survivor)", client.Reconnects())
			}
			if sealed := client.SealedSpool(); sealed != "" {
				t.Errorf("session sealed to %s instead of failing over live", sealed)
			}
		})
	}
}

// TestHelperDaemon is not a test: it is the body of the child process
// the real-SIGKILL drill spawns. It serves a daemon on the unix socket
// named by the environment and blocks until killed.
func TestHelperDaemon(t *testing.T) {
	sock := os.Getenv("BW_FLEET_HELPER_SOCK")
	if sock == "" {
		t.Skip("helper-process body; only runs when spawned by TestFleetFailoverRealSIGKILL")
	}
	ln, err := net.Listen("unix", sock)
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper:", err)
		os.Exit(1)
	}
	srv := remote.NewServer(remote.ServerConfig{})
	_ = srv.Serve(ln)
}

// TestFleetFailoverRealSIGKILL runs the kill drill against a real
// operating-system process: a second test binary serves one member on a
// unix socket and is SIGKILLed mid-run; the session must fail over to
// the in-process member and land the in-process verdict.
func TestFleetFailoverRealSIGKILL(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "helper.sock")
	helper := exec.Command(os.Args[0], "-test.run=TestHelperDaemon$")
	helper.Env = append(os.Environ(), "BW_FLEET_HELPER_SOCK="+sock)
	helper.Stdout, helper.Stderr = io.Discard, io.Discard
	if err := helper.Start(); err != nil {
		t.Fatal(err)
	}
	var killed atomic.Bool
	defer func() {
		if !killed.Load() {
			helper.Process.Kill()
		}
		helper.Wait()
	}()
	helperAddr := "unix:" + sock
	deadline := time.Now().Add(10 * time.Second)
	for dialProbe(helperAddr, 200*time.Millisecond) != nil {
		if time.Now().After(deadline) {
			t.Fatal("helper daemon never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	survivor := remote.NewServer(remote.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go survivor.Serve(ln)
	defer survivor.Close()

	pool, err := NewPool(Config{
		Members:       []Member{{Addr: helperAddr}, {Addr: ln.Addr().String()}},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Rendezvous hashing is deterministic, so hunt for a key the helper
	// member is primary for.
	key := ""
	for i := 0; i < 1024; i++ {
		k := fmt.Sprintf("sigkill-%d", i)
		if pool.Rank(k)[0].Addr == helperAddr {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no session key ranked the helper daemon first")
	}

	mod, plans := kernelPlans(t, "fft")
	local := runInProcess(t, mod, plans, nil)

	sess := pool.Session(key)
	ij := inject.NewNetInjector(inject.NetFaultPlan{Kind: inject.NetKill, AfterFrames: 4})
	ij.OnKill = func() {
		killed.Store(true)
		helper.Process.Kill() // SIGKILL: the daemon process dies mid-session
	}
	client, err := remote.DialSelector(sess, remote.ClientConfig{
		Program:       key,
		NumThreads:    testThreads,
		Plans:         plans,
		WrapConn:      ij.Wrap,
		SpoolPath:     filepath.Join(dir, "run.bwspool"),
		ResultTimeout: 2 * time.Second,
		Retry: remote.RetryConfig{
			Attempts:    4,
			BaseDelay:   time.Millisecond,
			MaxDelay:    20 * time.Millisecond,
			DialTimeout: time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	res, err := interp.Run(mod, interp.Options{
		Threads: testThreads, Mode: interp.MonitorActive, Plans: plans, Sink: client,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ij.Fired() {
		t.Fatal("the kill never fired — the run ended before the target frame")
	}
	if !killed.Load() {
		t.Fatal("OnKill ran but the kill flag is unset")
	}
	compareRunsHealth(t, "sigkill", local, res, monitor.Degraded)
	if client.Reconnects() < 1 {
		t.Errorf("Reconnects() = %d, want >= 1 (failover to the survivor)", client.Reconnects())
	}
	if sealed := client.SealedSpool(); sealed != "" {
		t.Errorf("session sealed to %s instead of failing over live", sealed)
	}
	if got := survivor.Sessions(); got < 1 {
		t.Errorf("survivor served %d sessions, want >= 1 (the replayed session)", got)
	}
}
