package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"blockwatch/internal/monitor"
)

// TestDecodeZeroLengthPayload: frames with an empty payload (finish) and
// an events frame carrying zero events both decode cleanly — the
// decode-into path must not trip over n == 0 or count == 0.
func TestDecodeZeroLengthPayload(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFinish(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvents(3, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	var f Frame
	if err := r.ReadFrameInto(&f); err != nil || f.Type != FrameFinish {
		t.Fatalf("finish frame: %v %+v", err, f)
	}
	if err := r.ReadFrameInto(&f); err != nil || f.Type != FrameEvents {
		t.Fatalf("empty events frame: %v %+v", err, f)
	}
	if f.Slot != 3 || len(f.Events) != 0 {
		t.Errorf("empty events frame decoded to slot %d, %d events; want slot 3, 0 events",
			f.Slot, len(f.Events))
	}
	if err := r.ReadFrameInto(&f); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

// rejectFramePayloadLen returns the encoded payload size of a reject
// frame whose reason has n bytes (uvarint length prefix + the bytes).
func rejectFramePayloadLen(n int) int { return uvarintLen(uint64(n)) + n }

// TestDecodePayloadAtRetainCap pins the scratch-retention boundary: a
// payload of exactly PayloadRetainCap bytes is kept for the next frame,
// one byte more and the buffer is released so a single huge frame cannot
// pin memory for the rest of a session (or a pooled reader's lifetime).
func TestDecodePayloadAtRetainCap(t *testing.T) {
	// Reason length chosen so the reject payload (length prefix + bytes)
	// lands exactly on the cap.
	atCap := PayloadRetainCap - uvarintLen(uint64(PayloadRetainCap))
	if got := rejectFramePayloadLen(atCap); got != PayloadRetainCap {
		t.Fatalf("test construction: payload %d, want %d", got, PayloadRetainCap)
	}
	cases := []struct {
		name   string
		reason string
		retain bool
	}{
		{"at-cap", strings.Repeat("x", atCap), true},
		{"over-cap", strings.Repeat("x", atCap+1), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			w := NewWriter(&buf)
			if err := w.WriteReject(c.reason); err != nil {
				t.Fatal(err)
			}
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			r := NewReader(bytes.NewReader(buf.Bytes()))
			var f Frame
			if err := r.ReadFrameInto(&f); err != nil {
				t.Fatal(err)
			}
			if f.Type != FrameReject || f.Reject != c.reason {
				t.Fatalf("decoded %+v, want reject with %d-byte reason", f.Type, len(c.reason))
			}
			if retained := cap(r.payload) > 0; retained != c.retain {
				t.Errorf("payload scratch cap = %d after %d-byte payload; retain = %t, want %t",
					cap(r.payload), rejectFramePayloadLen(len(c.reason)), retained, c.retain)
			}
		})
	}
}

// TestDecodeOversizeFrame: a header claiming more than MaxPayload is
// rejected with ErrTooLarge before any payload byte is read — the
// decoder must never size a buffer from an unvalidated length field.
func TestDecodeOversizeFrame(t *testing.T) {
	var hdr [5]byte
	hdr[0] = FrameEvents
	binary.LittleEndian.PutUint32(hdr[1:], uint32(MaxPayload+1))
	r := NewReader(bytes.NewReader(hdr[:]))
	var f Frame
	if err := r.ReadFrameInto(&f); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize frame: %v, want ErrTooLarge", err)
	}
	if cap(r.payload) != 0 {
		t.Errorf("oversize header allocated a %d-byte payload buffer", cap(r.payload))
	}
}

// TestEventsSizeMatchesEncoding pins EventsSize to the encoder: the
// coalescer's byte budgeting is only sound if the predicted size is the
// encoded size, for events with and without the optional thread field.
func TestEventsSizeMatchesEncoding(t *testing.T) {
	cases := []struct {
		name string
		slot int
		evs  []monitor.Event
	}{
		{"empty", 2, nil},
		{"mixed", 2, testEvents(2)},
		{"other-thread", 0, testEvents(5)},
		{"big-values", 7, []monitor.Event{
			{Kind: monitor.EvBranch, Thread: 7, BranchID: 1 << 30, Key1: ^uint64(0), Key2: 1 << 63, Sig: ^uint64(0), Taken: true},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			w := NewWriter(&buf)
			if err := w.WriteEvents(c.slot, c.evs); err != nil {
				t.Fatal(err)
			}
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			// frame = 5-byte header + payload + 4-byte CRC; the payload
			// starts with the slot and count uvarints EventsSize excludes.
			payload := buf.Len() - 5 - 4
			prefix := uvarintLen(uint64(c.slot)) + uvarintLen(uint64(len(c.evs)))
			if got, want := EventsSize(c.slot, c.evs), payload-prefix; got != want {
				t.Errorf("EventsSize = %d, encoded payload is %d bytes after the %d-byte prefix",
					got, want, prefix)
			}
			if prefix > EventsFrameOverhead {
				t.Errorf("slot/count prefix %d exceeds EventsFrameOverhead %d", prefix, EventsFrameOverhead)
			}
		})
	}
}

// TestWireDecodeZeroAlloc is the CI alloc ceiling for the pooled decode
// path: once the payload scratch and event buffer are warm, decoding
// event frames with Reset + ReadFrameInto must not allocate at all.
func TestWireDecodeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc gate runs in the non-race jobs")
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 16; i++ {
		if err := w.WriteEvents(2, testEvents(2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	br := bytes.NewReader(data)
	rd := NewReader(br)
	var f Frame
	decodeAll := func() {
		br.Reset(data)
		rd.Reset(br)
		for {
			if err := rd.ReadFrameInto(&f); err != nil {
				if err != io.EOF {
					t.Fatal(err)
				}
				return
			}
		}
	}
	decodeAll() // warm the payload scratch and the event buffer
	if avg := testing.AllocsPerRun(100, decodeAll); avg != 0 {
		t.Errorf("steady-state decode allocates %.1f times per stream, want 0", avg)
	}
}
