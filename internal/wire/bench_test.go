package wire

import (
	"bytes"
	"io"
	"testing"

	"blockwatch/internal/monitor"
)

// benchBatch mirrors the monitor's default Sender batch: the unit of
// encoding work on the remote hot path.
func benchBatch() []monitor.Event {
	evs := make([]monitor.Event, monitor.DefaultSenderBatch)
	for i := range evs {
		evs[i] = monitor.Event{
			Kind:     monitor.EvBranch,
			Thread:   2,
			BranchID: int32(i % 7),
			Key1:     0x9e3779b97f4a7c15 ^ uint64(i%7),
			Key2:     uint64(i / 7),
			Sig:      uint64(i) * 0x100000001b3,
			Taken:    i%3 == 0,
		}
	}
	return evs
}

func BenchmarkWireEncode(b *testing.B) {
	evs := benchBatch()
	w := NewWriter(io.Discard)
	var encoded bytes.Buffer
	mw := NewWriter(&encoded)
	if err := mw.WriteEvents(2, evs); err != nil {
		b.Fatal(err)
	}
	if err := mw.Sync(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(encoded.Len()))
	b.ReportMetric(float64(encoded.Len())/float64(len(evs)), "wire-bytes/event")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteEvents(2, evs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFrame encodes one default-batch events frame and returns its bytes.
func benchFrame(b *testing.B) ([]monitor.Event, []byte) {
	evs := benchBatch()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEvents(2, evs); err != nil {
		b.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		b.Fatal(err)
	}
	return evs, buf.Bytes()
}

// BenchmarkWireDecode measures the daemon's per-frame ingest decode: a
// pooled Reader reset onto each stream, decoding into a reused Frame —
// the steady-state server path, which must not allocate.
func BenchmarkWireDecode(b *testing.B) {
	evs, data := benchFrame(b)
	br := bytes.NewReader(data)
	rd := NewReader(br)
	var f Frame
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.Reset(data)
		rd.Reset(br)
		if err := rd.ReadFrameInto(&f); err != nil || len(f.Events) != len(evs) {
			b.Fatalf("decode: %v", err)
		}
	}
}

// BenchmarkWireDecodeCompat measures the allocating compatibility path —
// a fresh Reader and returned Frame per stream, the shape one-shot
// consumers (finishOnce, readHeader) use.
func BenchmarkWireDecodeCompat(b *testing.B) {
	evs, data := benchFrame(b)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := NewReader(bytes.NewReader(data)).ReadFrame()
		if err != nil || len(f.Events) != len(evs) {
			b.Fatalf("decode: %v", err)
		}
	}
}
