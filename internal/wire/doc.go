// Package wire is the compact, versioned binary codec shared by the
// out-of-process monitoring path (internal/remote, cmd/bwmonitord) and
// the on-disk trace format (internal/trace, cmd/bwtrace). A stream is a
// sequence of length-prefixed, CRC-guarded frames:
//
//	frame := type(1) | payloadLen(u32 LE) | payload | crc32c(u32 LE)
//
// where the CRC covers the type byte and the payload. Payload interiors
// use varints (unsigned for keys and counts, zigzag for the signed
// thread/branch identifiers), so a typical branch event costs a handful
// of bytes instead of Event's 40.
//
// The frame vocabulary mirrors the monitor's event model: a stream opens
// with a Hello frame (magic, version, thread count, and the check-plan
// table reduced to the fields the checker consumes), carries Events
// frames (one thread's batch of branch events — a frame never mixes
// threads and never contains control events, mirroring the Sender
// flush-before-control rule, so a frame can never split a barrier),
// explicit Flush/Done control-marker frames, a Finish frame when every
// thread is done, and finally a Result frame carrying the checking
// outcome (violations, stats, health).
//
// Decoding is total: corrupt input produces an error, never a panic, and
// a CRC mismatch is always rejected (FuzzWireDecode pins both
// properties). That is what lets the remote client fail open on a
// garbled connection and lets bwtrace refuse a truncated trace cleanly.
package wire
