package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"sort"
	"time"

	"blockwatch/internal/core"
	"blockwatch/internal/ir"
	"blockwatch/internal/metrics"
	"blockwatch/internal/monitor"
)

// Magic opens every stream's Hello frame ("BWM1").
const Magic uint32 = 0x42574d31

// Version is the codec version emitted by this package. Decoders accept
// exactly this version; bumping it is a wire break.
const Version = 1

// Frame types.
const (
	// FrameHello opens a stream: magic, version, program name, thread
	// count, and the reduced check-plan table.
	FrameHello byte = 1 + iota
	// FrameEvents carries one thread's batch of branch events.
	FrameEvents
	// FrameFlush is a thread's barrier marker (monitor.EvFlush).
	FrameFlush
	// FrameDone is a thread's end-of-section marker (monitor.EvDone).
	FrameDone
	// FrameFinish marks that every thread's done marker has been sent;
	// a server answers it with a FrameResult.
	FrameFinish
	// FrameResult carries the checking outcome.
	FrameResult
	// FrameReject is a server's polite refusal of a new session (for
	// example, at the -maxconns limit). It carries a reason string and is
	// followed by the server closing the connection. A client treats it
	// as a retryable transport fault, never a crash.
	FrameReject
)

// MaxPayload bounds a frame's payload; larger length prefixes are
// rejected before any allocation (a corrupt length cannot OOM a reader).
const MaxPayload = 1 << 20

// PayloadRetainCap bounds the payload scratch a Reader keeps between
// frames: the buffer grows on demand up to this cap and is then reused
// for every following frame, so steady-state decoding allocates nothing;
// a rare oversize frame (up to MaxPayload) gets a transient buffer that
// is released after the frame, so one huge frame cannot pin a megabyte
// per pooled reader in a many-session daemon.
const PayloadRetainCap = 64 << 10

// Codec errors.
var (
	ErrCRC      = errors.New("wire: frame CRC mismatch")
	ErrTooLarge = errors.New("wire: frame payload exceeds MaxPayload")
	ErrBadMagic = errors.New("wire: bad hello magic")
	ErrVersion  = errors.New("wire: unsupported codec version")
	errShort    = errors.New("wire: truncated payload")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Plan is the checker-facing reduction of a core.CheckPlan: exactly the
// fields monitor.CheckReports consumes. Static analysis stays on the
// program side of the wire; the checking side reconstructs a plan table
// from these.
type Plan struct {
	BranchID  int
	Kind      core.CheckKind
	Relation  ir.Op
	TidOnLeft bool
}

// Hello is the stream header.
type Hello struct {
	Version int
	Program string
	Threads int
	Plans   []Plan
}

// HelloFromPlans builds a stream header from an analysis plan table,
// keeping only checked branches (unchecked branches never produce
// events) in deterministic BranchID order.
func HelloFromPlans(program string, threads int, plans map[int]*core.CheckPlan) *Hello {
	h := &Hello{Version: Version, Program: program, Threads: threads}
	ids := make([]int, 0, len(plans))
	for id, p := range plans {
		if p != nil && p.Checked() {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		p := plans[id]
		h.Plans = append(h.Plans, Plan{
			BranchID:  p.BranchID,
			Kind:      p.Kind,
			Relation:  p.Relation,
			TidOnLeft: p.TidOnLeft,
		})
	}
	return h
}

// PlanTable reconstructs the check-plan table the monitor needs on the
// checking side of the wire.
func (h *Hello) PlanTable() map[int]*core.CheckPlan {
	out := make(map[int]*core.CheckPlan, len(h.Plans))
	for _, p := range h.Plans {
		out[p.BranchID] = &core.CheckPlan{
			BranchID:  p.BranchID,
			Kind:      p.Kind,
			Relation:  p.Relation,
			TidOnLeft: p.TidOnLeft,
			Reason:    core.ReasonChecked,
		}
	}
	return out
}

// Result is the checking outcome carried by a FrameResult.
type Result struct {
	Health     monitor.HealthState
	Stats      monitor.Stats
	Violations []monitor.Violation
}

// Detected reports whether the result carries any violation.
func (r *Result) Detected() bool { return len(r.Violations) > 0 }

// Writer encodes frames onto an io.Writer through an internal buffer.
// Writers are not safe for concurrent use; the relay's single drain
// goroutine (or a trace writer) owns one.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	// Metric handles (nil when detached): frames/bytes encoded and
	// per-frame encode time. frame() is the single encode choke point.
	metFrames   *metrics.Counter
	metBytes    *metrics.Counter
	metEncodeNs *metrics.Histogram
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<15)}
}

// Instrument attaches metric handles to the writer: frames and bytes
// count every encoded frame (header + payload + CRC), encodeNs times
// each frame write. Nil handles are allowed (and cost one branch each).
func (w *Writer) Instrument(frames, bytes *metrics.Counter, encodeNs *metrics.Histogram) {
	w.metFrames = frames
	w.metBytes = bytes
	w.metEncodeNs = encodeNs
}

// InstrumentTx attaches the codec's standard transmit metrics
// (bw_wire_frames_total, bw_wire_bytes_total, bw_wire_encode_ns) from
// r. A nil registry leaves the writer detached. The remote client and
// the trace recorder share these names — both encode the same stream.
func (w *Writer) InstrumentTx(r *metrics.Registry) {
	if r == nil {
		return
	}
	w.Instrument(
		r.Counter("bw_wire_frames_total", "frames encoded onto the wire or trace"),
		r.Counter("bw_wire_bytes_total", "bytes encoded onto the wire or trace"),
		r.Histogram("bw_wire_encode_ns", "per-frame encode+write time, ns",
			metrics.ExpBuckets(250, 4, 10)),
	)
}

// Sync flushes buffered frames to the underlying writer.
func (w *Writer) Sync() error { return w.w.Flush() }

func (w *Writer) frame(typ byte) error {
	var t0 time.Time
	if w.metEncodeNs != nil {
		t0 = time.Now()
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(w.buf)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	crc := crc32.Update(0, castagnoli, hdr[:1])
	crc = crc32.Update(crc, castagnoli, w.buf)
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err := w.w.Write(tail[:]); err != nil {
		return err
	}
	w.metFrames.Inc()
	w.metBytes.Add(uint64(len(hdr) + len(w.buf) + len(tail)))
	if w.metEncodeNs != nil {
		w.metEncodeNs.Observe(time.Since(t0).Nanoseconds())
	}
	return nil
}

func (w *Writer) u64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *Writer) i64(v int64)  { w.buf = binary.AppendVarint(w.buf, v) }
func (w *Writer) byte(b byte)  { w.buf = append(w.buf, b) }
func (w *Writer) str(s string) { w.u64(uint64(len(s))); w.buf = append(w.buf, s...) }
func (w *Writer) u32fixed(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// WriteHello encodes the stream header.
func (w *Writer) WriteHello(h *Hello) error {
	w.buf = w.buf[:0]
	w.u32fixed(Magic)
	w.u64(uint64(Version))
	w.str(h.Program)
	w.u64(uint64(h.Threads))
	w.u64(uint64(len(h.Plans)))
	for _, p := range h.Plans {
		w.i64(int64(p.BranchID))
		w.u64(uint64(p.Kind))
		w.u64(uint64(p.Relation))
		if p.TidOnLeft {
			w.byte(1)
		} else {
			w.byte(0)
		}
	}
	return w.frame(FrameHello)
}

// Event flag bits.
const (
	evTaken     = 1 << 0 // branch outcome
	evHasThread = 1 << 1 // payload thread differs from the frame's slot
)

// WriteEvents encodes one thread's batch of branch events. slot is the
// producing thread's queue index; an event whose payload Thread field
// differs from slot (possible only under corruption) is encoded
// explicitly so the checking side sees exactly what an in-process
// monitor would have seen.
func (w *Writer) WriteEvents(slot int, evs []monitor.Event) error {
	w.buf = w.buf[:0]
	w.u64(uint64(slot))
	w.u64(uint64(len(evs)))
	for i := range evs {
		ev := &evs[i]
		var flags byte
		if ev.Taken {
			flags |= evTaken
		}
		if int(ev.Thread) != slot {
			flags |= evHasThread
		}
		w.byte(flags)
		if flags&evHasThread != 0 {
			w.i64(int64(ev.Thread))
		}
		w.i64(int64(ev.BranchID))
		w.u64(ev.Key1)
		w.u64(ev.Key2)
		w.u64(ev.Sig)
	}
	return w.frame(FrameEvents)
}

// uvarintLen returns the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int { return (bits.Len64(v|1) + 6) / 7 }

// varintLen returns the encoded size of v as a zigzag varint.
func varintLen(v int64) int { return uvarintLen(uint64(v)<<1 ^ uint64(v>>63)) }

// EventsSize returns the payload bytes the events would occupy inside a
// FrameEvents for slot, excluding the frame's slot/count prefix. The
// remote client's frame coalescer uses it to stay under its byte budget
// (and under MaxPayload) without encoding speculatively.
func EventsSize(slot int, evs []monitor.Event) int {
	n := 0
	for i := range evs {
		ev := &evs[i]
		n++ // flags
		if int(ev.Thread) != slot {
			n += varintLen(int64(ev.Thread))
		}
		n += varintLen(int64(ev.BranchID))
		n += uvarintLen(ev.Key1) + uvarintLen(ev.Key2) + uvarintLen(ev.Sig)
	}
	return n
}

// EventsFrameOverhead is the worst-case payload bytes a FrameEvents
// spends on its slot/count prefix; coalescers budget for it on top of
// EventsSize.
const EventsFrameOverhead = 2 * binary.MaxVarintLen64

// WriteFlush encodes thread slot's barrier marker; thread is the marker's
// payload thread ID (== slot unless corrupted upstream).
func (w *Writer) WriteFlush(slot int, thread int32) error {
	return w.control(FrameFlush, slot, thread)
}

// WriteDone encodes thread slot's end-of-section marker.
func (w *Writer) WriteDone(slot int, thread int32) error {
	return w.control(FrameDone, slot, thread)
}

func (w *Writer) control(typ byte, slot int, thread int32) error {
	w.buf = w.buf[:0]
	w.u64(uint64(slot))
	w.i64(int64(thread))
	return w.frame(typ)
}

// WriteFinish encodes the end-of-stream marker.
func (w *Writer) WriteFinish() error {
	w.buf = w.buf[:0]
	return w.frame(FrameFinish)
}

// WriteReject encodes a session refusal with a human-readable reason.
func (w *Writer) WriteReject(reason string) error {
	w.buf = w.buf[:0]
	w.str(reason)
	return w.frame(FrameReject)
}

// WriteResult encodes the checking outcome.
func (w *Writer) WriteResult(r *Result) error {
	w.buf = w.buf[:0]
	w.byte(byte(r.Health))
	w.u64(r.Stats.Events)
	w.u64(r.Stats.Instances)
	w.u64(r.Stats.Flushes)
	w.u64(r.Stats.Dropped)
	w.u64(r.Stats.Quarantined)
	w.u64(r.Stats.Watchdog)
	w.u64(r.Stats.Panics)
	w.u64(uint64(len(r.Violations)))
	for _, v := range r.Violations {
		w.i64(int64(v.BranchID))
		w.u64(v.Key1)
		w.u64(v.Key2)
		w.str(v.Reason)
	}
	return w.frame(FrameResult)
}

// Frame is one decoded frame. Only the fields matching Type are set.
// With ReadFrame the Events slice is owned by the Reader and valid until
// the next read; with ReadFrameInto it is the caller's scratch, reused
// (grown, never shrunk) across calls on the same Frame.
type Frame struct {
	Type   byte
	Slot   int             // FrameEvents, FrameFlush, FrameDone
	Thread int32           // FrameFlush, FrameDone payload thread
	Events []monitor.Event // FrameEvents
	Hello  *Hello          // FrameHello
	Result *Result         // FrameResult
	Reject string          // FrameReject reason
}

// Reader decodes frames from an io.Reader. Not safe for concurrent use.
type Reader struct {
	r       *bufio.Reader
	payload []byte
	events  []monitor.Event // ReadFrame's compat scratch
	// hdr and tail are per-frame header/CRC scratch. They live on the
	// Reader because io.ReadFull takes the buffer through an interface,
	// so stack arrays would escape — one heap allocation each per frame.
	hdr  [5]byte
	tail [4]byte
	// Metric handles (nil when detached): frames/bytes decoded, payload
	// scratch growths, and the scratch's high-water capacity.
	metFrames *metrics.Counter
	metBytes  *metrics.Counter
	metGrows  *metrics.Counter
	metBufCap *metrics.Gauge
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<15)}
}

// Reset discards any buffered input and switches the reader to src,
// keeping the payload and event scratch (and any attached metric
// handles). It is the pooling hook: a daemon reuses one Reader — and its
// warmed buffers — across many connections.
func (r *Reader) Reset(src io.Reader) { r.r.Reset(src) }

// Instrument attaches metric handles to the reader: frames and bytes
// count every successfully decoded frame. Nil handles are allowed.
func (r *Reader) Instrument(frames, bytes *metrics.Counter) {
	r.metFrames = frames
	r.metBytes = bytes
}

// InstrumentRx attaches the codec's standard receive metrics
// (bw_wire_rx_frames_total, bw_wire_rx_bytes_total) plus the decode
// scratch-reuse gauges (bw_wire_decode_buf_grows_total,
// bw_wire_decode_buf_bytes) from reg. A nil registry leaves the reader
// detached.
func (r *Reader) InstrumentRx(reg *metrics.Registry) {
	if reg == nil {
		// Detach explicitly: a pooled reader must not keep counting into
		// a previous owner's registry.
		r.Instrument(nil, nil)
		r.metGrows, r.metBufCap = nil, nil
		return
	}
	r.Instrument(
		reg.Counter("bw_wire_rx_frames_total", "frames decoded from the wire or trace"),
		reg.Counter("bw_wire_rx_bytes_total", "bytes decoded from the wire or trace"),
	)
	r.metGrows = reg.Counter("bw_wire_decode_buf_grows_total",
		"payload-scratch (re)allocations across decoded frames — steady state is 0 per frame")
	r.metBufCap = reg.Gauge("bw_wire_decode_buf_bytes",
		"high-water retained payload-scratch capacity, bytes")
}

// ReadFrame reads and verifies one frame. It returns io.EOF at a clean
// frame boundary and io.ErrUnexpectedEOF inside a frame; any malformed
// content (bad CRC, bad length, truncated varints, unknown type) is an
// error, never a panic. The compatibility wrapper over ReadFrameInto: it
// allocates the returned Frame but still reuses the reader-owned event
// scratch, so the returned Events slice is valid only until the next
// read.
func (r *Reader) ReadFrame() (*Frame, error) {
	f := &Frame{Events: r.events}
	err := r.ReadFrameInto(f)
	r.events = f.Events[:0] // retain scratch growth even on error
	if err != nil {
		return nil, err
	}
	return f, nil
}

// ReadFrameInto reads and verifies one frame into f, with exactly
// ReadFrame's error semantics and acceptance (FuzzWireDecode pins the
// two byte-for-byte). Nothing is allocated at steady state: the payload
// is read into the reader's retained scratch (grow-only, capped at
// PayloadRetainCap; oversize frames use a transient buffer) and event
// frames decode into f.Events[:0], growing the caller's scratch only
// when a frame outsizes it. On error f's contents are unspecified.
func (r *Reader) ReadFrameInto(f *Frame) error {
	f.Type = 0
	f.Slot, f.Thread = 0, 0
	f.Events = f.Events[:0]
	f.Hello, f.Result = nil, nil
	f.Reject = ""
	hdr := r.hdr[:]
	if _, err := io.ReadFull(r.r, hdr[:1]); err != nil {
		return err // io.EOF here is a clean end of stream
	}
	if _, err := io.ReadFull(r.r, hdr[1:]); err != nil {
		return unexpectedEOF(err)
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > MaxPayload {
		return ErrTooLarge
	}
	if cap(r.payload) < int(n) {
		r.payload = make([]byte, n)
		r.metGrows.Inc()
		if n <= PayloadRetainCap {
			r.metBufCap.SetMax(int64(cap(r.payload)))
		}
	}
	r.payload = r.payload[:n]
	if _, err := io.ReadFull(r.r, r.payload); err != nil {
		return unexpectedEOF(err)
	}
	tail := r.tail[:]
	if _, err := io.ReadFull(r.r, tail); err != nil {
		return unexpectedEOF(err)
	}
	crc := crc32.Update(0, castagnoli, hdr[:1])
	crc = crc32.Update(crc, castagnoli, r.payload)
	if crc != binary.LittleEndian.Uint32(tail) {
		return ErrCRC
	}
	err := r.decodeInto(f, hdr[0], r.payload)
	if err == nil {
		r.metFrames.Inc()
		r.metBytes.Add(uint64(len(hdr) + len(r.payload) + len(tail)))
	}
	if cap(r.payload) > PayloadRetainCap {
		r.payload = nil // oversize frame: release the transient buffer
	}
	return err
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// decodeInto decodes one verified payload into f. Event frames append
// into f.Events (already reset by the caller); all other frame kinds
// allocate their natural once-per-session structures (Hello, Result).
func (r *Reader) decodeInto(f *Frame, typ byte, payload []byte) error {
	d := dec{b: payload}
	f.Type = typ
	switch typ {
	case FrameHello:
		h, err := decodeHello(&d)
		if err != nil {
			return err
		}
		f.Hello = h
	case FrameEvents:
		slot := d.u64()
		count := d.u64()
		if d.err != nil {
			return d.err
		}
		// Each encoded event is at least 5 bytes, so count is bounded by
		// the payload size; a corrupt count cannot force a huge allocation.
		if count > uint64(len(payload)) {
			return fmt.Errorf("wire: events count %d exceeds payload", count)
		}
		f.Slot = int(slot)
		for i := uint64(0); i < count; i++ {
			flags := d.byte()
			ev := monitor.Event{Kind: monitor.EvBranch, Thread: int32(slot)}
			ev.Taken = flags&evTaken != 0
			if flags&evHasThread != 0 {
				ev.Thread = int32(d.i64())
			}
			ev.BranchID = int32(d.i64())
			ev.Key1 = d.u64()
			ev.Key2 = d.u64()
			ev.Sig = d.u64()
			if d.err != nil {
				return d.err
			}
			f.Events = append(f.Events, ev)
		}
	case FrameFlush, FrameDone:
		f.Slot = int(d.u64())
		f.Thread = int32(d.i64())
		if d.err != nil {
			return d.err
		}
	case FrameFinish:
		// no payload
	case FrameReject:
		f.Reject = d.str()
		if d.err != nil {
			return d.err
		}
	case FrameResult:
		res, err := decodeResult(&d)
		if err != nil {
			return err
		}
		f.Result = res
	default:
		return fmt.Errorf("wire: unknown frame type 0x%02x", typ)
	}
	return d.err
}

func decodeHello(d *dec) (*Hello, error) {
	if d.u32fixed() != Magic {
		if d.err != nil {
			return nil, d.err
		}
		return nil, ErrBadMagic
	}
	v := d.u64()
	if d.err == nil && v != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, v, Version)
	}
	h := &Hello{Version: int(v)}
	h.Program = d.str()
	h.Threads = int(d.u64())
	count := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if count > uint64(len(d.b)) {
		return nil, fmt.Errorf("wire: plan count %d exceeds payload", count)
	}
	for i := uint64(0); i < count; i++ {
		p := Plan{
			BranchID: int(d.i64()),
			Kind:     core.CheckKind(d.u64()),
			Relation: ir.Op(d.u64()),
		}
		p.TidOnLeft = d.byte() != 0
		if d.err != nil {
			return nil, d.err
		}
		h.Plans = append(h.Plans, p)
	}
	return h, nil
}

func decodeResult(d *dec) (*Result, error) {
	r := &Result{Health: monitor.HealthState(d.byte())}
	r.Stats.Events = d.u64()
	r.Stats.Instances = d.u64()
	r.Stats.Flushes = d.u64()
	r.Stats.Dropped = d.u64()
	r.Stats.Quarantined = d.u64()
	r.Stats.Watchdog = d.u64()
	r.Stats.Panics = d.u64()
	count := d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if count > uint64(len(d.b)) {
		return nil, fmt.Errorf("wire: violation count %d exceeds payload", count)
	}
	for i := uint64(0); i < count; i++ {
		v := monitor.Violation{
			BranchID: int(d.i64()),
			Key1:     d.u64(),
			Key2:     d.u64(),
			Reason:   d.str(),
		}
		if d.err != nil {
			return nil, d.err
		}
		r.Violations = append(r.Violations, v)
	}
	return r, nil
}

// dec is a bounds-checked little decoder over one frame payload. The
// first failure sticks in err; subsequent reads return zero values, so
// parse loops stay total on corrupt input.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = errShort
	}
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail()
		return 0
	}
	b := d.b[d.off]
	d.off++
	return b
}

func (d *dec) u32fixed() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)-d.off) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
