package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"blockwatch/internal/core"
	"blockwatch/internal/ir"
	"blockwatch/internal/monitor"
)

func testHello() *Hello {
	return &Hello{
		Version: Version,
		Program: "fft",
		Threads: 4,
		Plans: []Plan{
			{BranchID: 1, Kind: core.CheckShared},
			{BranchID: 3, Kind: core.CheckThreadID, Relation: ir.OpLt, TidOnLeft: true},
			{BranchID: 7, Kind: core.CheckPartial},
			{BranchID: 9, Kind: core.CheckUniform, TidOnLeft: false},
		},
	}
}

func testEvents(slot int) []monitor.Event {
	return []monitor.Event{
		{Kind: monitor.EvBranch, Thread: int32(slot), BranchID: 1, Key1: 0xdeadbeef, Key2: 2, Sig: 42, Taken: true},
		{Kind: monitor.EvBranch, Thread: int32(slot), BranchID: 3, Key1: 1, Key2: 1 << 60, Sig: ^uint64(0)},
		// Corrupted payload thread (differs from slot) must round-trip.
		{Kind: monitor.EvBranch, Thread: -5, BranchID: -1, Key1: 0, Key2: 0, Sig: 7, Taken: true},
	}
}

func testResult() *Result {
	return &Result{
		Health: monitor.Degraded,
		Stats:  monitor.Stats{Events: 100, Instances: 25, Flushes: 3, Dropped: 2, Quarantined: 1, Watchdog: 1, Panics: 0},
		Violations: []monitor.Violation{
			{BranchID: 3, Key1: 9, Key2: 11, Reason: "shared condition data differs between threads 0 and 2"},
			{BranchID: 3, Key1: 9, Key2: 12, Reason: "x"},
		},
	}
}

// encodeStream writes a representative full stream and returns its bytes.
func encodeStream(t testing.TB) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHello(testHello()); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvents(2, testEvents(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFlush(2, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvents(0, testEvents(0)[:1]); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteDone(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFinish(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteResult(testResult()); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := encodeStream(t)
	r := NewReader(bytes.NewReader(data))

	f, err := r.ReadFrame()
	if err != nil || f.Type != FrameHello {
		t.Fatalf("hello frame: %v %+v", err, f)
	}
	if !reflect.DeepEqual(f.Hello, testHello()) {
		t.Errorf("hello mismatch:\n got %+v\nwant %+v", f.Hello, testHello())
	}

	f, err = r.ReadFrame()
	if err != nil || f.Type != FrameEvents || f.Slot != 2 {
		t.Fatalf("events frame: %v %+v", err, f)
	}
	if !reflect.DeepEqual(f.Events, testEvents(2)) {
		t.Errorf("events mismatch:\n got %+v\nwant %+v", f.Events, testEvents(2))
	}

	f, err = r.ReadFrame()
	if err != nil || f.Type != FrameFlush || f.Slot != 2 || f.Thread != 2 {
		t.Fatalf("flush frame: %v %+v", err, f)
	}

	f, err = r.ReadFrame()
	if err != nil || f.Type != FrameEvents || f.Slot != 0 || len(f.Events) != 1 {
		t.Fatalf("second events frame: %v %+v", err, f)
	}

	f, err = r.ReadFrame()
	if err != nil || f.Type != FrameDone || f.Slot != 0 || f.Thread != 0 {
		t.Fatalf("done frame: %v %+v", err, f)
	}

	f, err = r.ReadFrame()
	if err != nil || f.Type != FrameFinish {
		t.Fatalf("finish frame: %v %+v", err, f)
	}

	f, err = r.ReadFrame()
	if err != nil || f.Type != FrameResult {
		t.Fatalf("result frame: %v %+v", err, f)
	}
	if !reflect.DeepEqual(f.Result, testResult()) {
		t.Errorf("result mismatch:\n got %+v\nwant %+v", f.Result, testResult())
	}

	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestRejectRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteReject("daemon at capacity (4 sessions)"); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	f, err := r.ReadFrame()
	if err != nil || f.Type != FrameReject {
		t.Fatalf("reject frame: %v %+v", err, f)
	}
	if f.Reject != "daemon at capacity (4 sessions)" {
		t.Errorf("reject reason = %q", f.Reject)
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("expected clean EOF, got %v", err)
	}
}

func TestPlanTableRoundTrip(t *testing.T) {
	plans := map[int]*core.CheckPlan{
		1: {BranchID: 1, Kind: core.CheckShared, Reason: core.ReasonChecked},
		2: {BranchID: 2, Kind: core.CheckNone, Reason: core.ReasonCritical}, // unchecked: not shipped
		5: {BranchID: 5, Kind: core.CheckThreadID, Relation: ir.OpEq, TidOnLeft: true, Reason: core.ReasonChecked},
	}
	h := HelloFromPlans("water", 8, plans)
	if len(h.Plans) != 2 {
		t.Fatalf("expected 2 checked plans, got %d", len(h.Plans))
	}
	back := h.PlanTable()
	if len(back) != 2 {
		t.Fatalf("plan table size %d", len(back))
	}
	for _, id := range []int{1, 5} {
		got, want := back[id], plans[id]
		if got == nil || !got.Checked() || got.Kind != want.Kind ||
			got.Relation != want.Relation || got.TidOnLeft != want.TidOnLeft {
			t.Errorf("plan %d mismatch: got %+v want %+v", id, got, want)
		}
	}
	if back[2] != nil {
		t.Errorf("unchecked plan leaked across the wire")
	}
}

func TestCRCMismatchRejected(t *testing.T) {
	data := encodeStream(t)
	// Flip one bit in every byte position in turn; every corruption must
	// surface as an error (CRC, length, magic, …), never a panic, and a
	// pure payload flip must be ErrCRC.
	for i := range data {
		corrupt := bytes.Clone(data)
		corrupt[i] ^= 0x10
		r := NewReader(bytes.NewReader(corrupt))
		var err error
		for err == nil {
			_, err = r.ReadFrame()
		}
		if err == io.EOF {
			// The flip landed somewhere that still yields a parseable
			// stream prefix — impossible for payload bytes, which the CRC
			// covers; only a length-prefix flip that truncates cleanly
			// could do this, and the frame reader reports those too.
			t.Fatalf("bit flip at offset %d went unnoticed", i)
		}
	}
}

func TestPayloadFlipIsCRCError(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEvents(1, testEvents(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[7] ^= 0x01 // inside the payload (after 5-byte header)
	_, err := NewReader(bytes.NewReader(data)).ReadFrame()
	if !errors.Is(err, ErrCRC) {
		t.Fatalf("expected ErrCRC, got %v", err)
	}
}

func TestTruncationRejected(t *testing.T) {
	data := encodeStream(t)
	for n := 1; n < len(data); n++ {
		r := NewReader(bytes.NewReader(data[:n]))
		var err error
		for err == nil {
			_, err = r.ReadFrame()
		}
		if err == io.EOF && n < len(data) {
			// A clean EOF is only acceptable at a frame boundary.
			ok := false
			rr := NewReader(bytes.NewReader(data[:n]))
			for {
				_, e := rr.ReadFrame()
				if e != nil {
					ok = e == io.EOF
					break
				}
			}
			if !ok {
				t.Fatalf("truncation at %d not detected", n)
			}
		}
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	data := []byte{FrameEvents, 0xff, 0xff, 0xff, 0xff} // 4 GiB payload claim
	_, err := NewReader(bytes.NewReader(data)).ReadFrame()
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("expected ErrTooLarge, got %v", err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	h := testHello()
	if err := w.WriteHello(h); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := bytes.Clone(good)
	bad[5] ^= 0xff // first magic byte (header is 5 bytes)
	_, err := NewReader(bytes.NewReader(bad)).ReadFrame()
	if err == nil {
		t.Fatal("corrupted magic accepted")
	}

	// A well-formed hello of a different version must be refused.
	var vbuf bytes.Buffer
	vw := NewWriter(&vbuf)
	vw.buf = vw.buf[:0]
	vw.u32fixed(Magic)
	vw.u64(uint64(Version + 1))
	vw.str("x")
	vw.u64(1)
	vw.u64(0)
	if err := vw.frame(FrameHello); err != nil {
		t.Fatal(err)
	}
	if err := vw.Sync(); err != nil {
		t.Fatal(err)
	}
	_, err = NewReader(bytes.NewReader(vbuf.Bytes())).ReadFrame()
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("expected ErrVersion, got %v", err)
	}
}

func TestEmptyEventsFrame(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEvents(3, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err := NewReader(bytes.NewReader(buf.Bytes())).ReadFrame()
	if err != nil || f.Slot != 3 || len(f.Events) != 0 {
		t.Fatalf("empty events frame: %v %+v", err, f)
	}
}
