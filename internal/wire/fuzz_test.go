package wire

import (
	"bytes"
	"io"
	"reflect"
	"slices"
	"testing"
)

// FuzzWireDecode pins the codec's totality: arbitrary bytes — including
// mutations of well-formed streams — must decode to frames or errors,
// never panic, and every frame the decoder does accept must itself
// re-encode (the accepted subset of the wire language is closed under
// round-tripping). This is the property the remote client's fail-open
// path and bwtrace's corrupt-trace rejection both lean on.
//
// A second reader decodes the same bytes through ReadFrameInto in
// lockstep: the allocating compat wrapper and the scratch-reusing
// decode-into path must accept exactly the same inputs and produce
// identical frames — byte-for-byte the same wire language.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeStream(f))
	f.Add([]byte{FrameEvents, 0x05, 0x00, 0x00, 0x00, 1, 2, 3, 4, 5, 0, 0, 0, 0})
	f.Add([]byte{FrameHello, 0x00, 0x00, 0x00, 0x00, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		r2 := NewReader(bytes.NewReader(data))
		var f2 Frame
		w := NewWriter(io.Discard)
		for {
			fr, err := r.ReadFrame()
			err2 := r2.ReadFrameInto(&f2)
			if (err == nil) != (err2 == nil) {
				t.Fatalf("decode paths disagree: ReadFrame err %v, ReadFrameInto err %v", err, err2)
			}
			if err != nil {
				if err.Error() != err2.Error() {
					t.Fatalf("decode paths disagree on the error: %v vs %v", err, err2)
				}
				return
			}
			if fr.Type != f2.Type || fr.Slot != f2.Slot || fr.Thread != f2.Thread ||
				!slices.Equal(fr.Events, f2.Events) ||
				!reflect.DeepEqual(fr.Hello, f2.Hello) ||
				!reflect.DeepEqual(fr.Result, f2.Result) ||
				fr.Reject != f2.Reject {
				t.Fatalf("decode paths disagree on the frame:\n ReadFrame:     %+v\n ReadFrameInto: %+v", fr, &f2)
			}
			switch fr.Type {
			case FrameHello:
				if err := w.WriteHello(fr.Hello); err != nil {
					t.Fatalf("re-encode hello: %v", err)
				}
			case FrameEvents:
				if err := w.WriteEvents(fr.Slot, fr.Events); err != nil {
					t.Fatalf("re-encode events: %v", err)
				}
			case FrameFlush:
				_ = w.WriteFlush(fr.Slot, fr.Thread)
			case FrameDone:
				_ = w.WriteDone(fr.Slot, fr.Thread)
			case FrameFinish:
				_ = w.WriteFinish()
			case FrameResult:
				if err := w.WriteResult(fr.Result); err != nil {
					t.Fatalf("re-encode result: %v", err)
				}
			case FrameReject:
				_ = w.WriteReject(fr.Reject)
			default:
				t.Fatalf("decoder accepted unknown frame type 0x%02x", fr.Type)
			}
		}
	})
}
