package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzWireDecode pins the codec's totality: arbitrary bytes — including
// mutations of well-formed streams — must decode to frames or errors,
// never panic, and every frame the decoder does accept must itself
// re-encode (the accepted subset of the wire language is closed under
// round-tripping). This is the property the remote client's fail-open
// path and bwtrace's corrupt-trace rejection both lean on.
func FuzzWireDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeStream(f))
	f.Add([]byte{FrameEvents, 0x05, 0x00, 0x00, 0x00, 1, 2, 3, 4, 5, 0, 0, 0, 0})
	f.Add([]byte{FrameHello, 0x00, 0x00, 0x00, 0x00, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		w := NewWriter(io.Discard)
		for {
			fr, err := r.ReadFrame()
			if err != nil {
				return
			}
			switch fr.Type {
			case FrameHello:
				if err := w.WriteHello(fr.Hello); err != nil {
					t.Fatalf("re-encode hello: %v", err)
				}
			case FrameEvents:
				if err := w.WriteEvents(fr.Slot, fr.Events); err != nil {
					t.Fatalf("re-encode events: %v", err)
				}
			case FrameFlush:
				_ = w.WriteFlush(fr.Slot, fr.Thread)
			case FrameDone:
				_ = w.WriteDone(fr.Slot, fr.Thread)
			case FrameFinish:
				_ = w.WriteFinish()
			case FrameResult:
				if err := w.WriteResult(fr.Result); err != nil {
					t.Fatalf("re-encode result: %v", err)
				}
			default:
				t.Fatalf("decoder accepted unknown frame type 0x%02x", fr.Type)
			}
		}
	})
}
