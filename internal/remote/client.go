// Package remote moves the BLOCKWATCH monitor out of the monitored
// process: a Client implements monitor.Sink by framing the event stream
// onto a TCP or unix-socket connection (wire codec), and a Server demuxes
// per-connection streams into ordinary in-process monitors, one per
// monitored program, serving many programs concurrently. The split
// follows the same driver/worker separation the parallel Astrée
// implementation uses between its analysis workers and driver, and gives
// the reproduction something the paper's in-process design cannot have:
// the checker survives independently of the monitored program, and the
// exact event stream that led to a detection can be captured and replayed
// (internal/trace shares the codec).
//
// The client fails open, extending the monitor's in-process contract
// across the process boundary: a dead or slow daemon degrades coverage
// (Health() = Degraded, events discarded and counted as drops) but never
// blocks, crashes, or false-positives the monitored program.
package remote

import (
	"fmt"
	"net"
	"strings"
	"time"

	"blockwatch/internal/core"
	"blockwatch/internal/metrics"
	"blockwatch/internal/monitor"
	"blockwatch/internal/wire"
)

// DefaultResultTimeout bounds how long a closing client waits for the
// server's result frame before failing open.
const DefaultResultTimeout = 30 * time.Second

// ClientConfig configures a remote monitoring client.
type ClientConfig struct {
	// Program names the monitored program (shown by the daemon).
	Program string
	// NumThreads is the SPMD thread count.
	NumThreads int
	// Plans is the check-plan table from the local static analysis; its
	// checker-facing reduction is shipped in the hello frame.
	Plans map[int]*core.CheckPlan
	// QueueCap, Overflow, SendSpins, SenderBatch configure the client's
	// producer front end exactly like the in-process monitor's
	// (monitor.Config semantics). Backpressure from the connection maps
	// onto the overflow policy: a slow daemon fills the per-thread
	// queues, and the policy decides between blocking and dropping.
	QueueCap    int
	Overflow    monitor.OverflowPolicy
	SendSpins   int
	SenderBatch int
	// ResultTimeout bounds the wait for the server's result frame after
	// the finish frame (0 = DefaultResultTimeout).
	ResultTimeout time.Duration
	// Metrics, when non-nil, receives the client's wire and session
	// metrics (bw_wire_*, bw_remote_*) plus the relay's bw_relay_*.
	Metrics *metrics.Registry
}

// clientMetrics is the client's handle set (zero value = detached).
type clientMetrics struct {
	dials    *metrics.Counter   // bw_remote_dials_total
	dialNs   *metrics.Histogram // bw_remote_dial_ns
	finishNs *metrics.Histogram // bw_remote_finish_ns
	degraded *metrics.Counter   // bw_remote_degraded_total
}

func newClientMetrics(r *metrics.Registry) clientMetrics {
	if r == nil {
		return clientMetrics{}
	}
	return clientMetrics{
		dials: r.Counter("bw_remote_dials_total",
			"connections dialed to a monitoring daemon"),
		dialNs: r.Histogram("bw_remote_dial_ns",
			"dial + hello-exchange latency, ns", metrics.ExpBuckets(10_000, 4, 10)),
		finishNs: r.Histogram("bw_remote_finish_ns",
			"finish-protocol latency (finish frame out to result frame in), ns",
			metrics.ExpBuckets(10_000, 4, 10)),
		degraded: r.Counter("bw_remote_degraded_total",
			"sessions that ended degraded (fail-open outcome)"),
	}
}

// Client is a monitor.Sink whose checking back end lives in a bwmonitord
// daemon. Create with Dial or NewClient, then use exactly like a
// monitor.Monitor: Start, per-thread Senders (or Send), Close, then
// Detected/Violations/Health/Stats.
type Client struct {
	*monitor.Relay
	conn net.Conn
	wr   *wire.Writer
	cfg  ClientConfig
	met  clientMetrics
}

// SplitAddr resolves the CLI address syntax into a (network, address)
// pair for net.Dial/net.Listen: "unix:<path>" or any address containing
// a path separator selects a unix socket; everything else is TCP.
func SplitAddr(addr string) (network, address string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if rest, ok := strings.CutPrefix(addr, "tcp:"); ok {
		return "tcp", rest
	}
	if strings.ContainsRune(addr, '/') {
		return "unix", addr
	}
	return "tcp", addr
}

// Dial connects to a bwmonitord daemon and performs the hello exchange.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	var t0 time.Time
	if cfg.Metrics != nil {
		t0 = time.Now()
	}
	network, address := SplitAddr(addr)
	conn, err := net.Dial(network, address)
	if err != nil {
		return nil, fmt.Errorf("remote monitor: %w", err)
	}
	c, err := NewClient(conn, cfg)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.met.dials.Inc()
	if cfg.Metrics != nil {
		c.met.dialNs.Observe(time.Since(t0).Nanoseconds())
	}
	return c, nil
}

// NewClient builds a client over an established connection and writes
// the hello frame. Construction errors are returned synchronously (a
// daemon that refuses the hello is a configuration problem, not a
// mid-run failure, so it does not fail open).
func NewClient(conn net.Conn, cfg ClientConfig) (*Client, error) {
	if cfg.NumThreads < 1 {
		return nil, monitor.ErrNoThreads
	}
	if cfg.Plans == nil {
		return nil, monitor.ErrNoPlans
	}
	if cfg.ResultTimeout <= 0 {
		cfg.ResultTimeout = DefaultResultTimeout
	}
	c := &Client{conn: conn, wr: wire.NewWriter(conn), cfg: cfg, met: newClientMetrics(cfg.Metrics)}
	c.wr.InstrumentTx(cfg.Metrics)
	if err := c.wr.WriteHello(wire.HelloFromPlans(cfg.Program, cfg.NumThreads, cfg.Plans)); err != nil {
		return nil, fmt.Errorf("remote monitor hello: %w", err)
	}
	if err := c.wr.Sync(); err != nil {
		return nil, fmt.Errorf("remote monitor hello: %w", err)
	}
	relay, err := monitor.NewRelay(monitor.RelayConfig{
		NumThreads:  cfg.NumThreads,
		QueueCap:    cfg.QueueCap,
		Overflow:    cfg.Overflow,
		SendSpins:   cfg.SendSpins,
		SenderBatch: cfg.SenderBatch,
		Stream:      (*clientStream)(c),
		Finish:      c.finish,
		Metrics:     cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	c.Relay = relay
	return c, nil
}

// Close drains and closes the relay (running the finish protocol), then
// closes the connection. Idempotent.
func (c *Client) Close() {
	c.Relay.Close()
	c.conn.Close()
}

// clientStream adapts the client's connection writer to the relay's
// EventStream. Calls arrive only from the relay goroutine.
type clientStream Client

func (s *clientStream) StreamEvents(slot int, evs []monitor.Event) error {
	return s.wr.WriteEvents(slot, evs)
}

func (s *clientStream) StreamControl(slot int, ev monitor.Event) error {
	switch ev.Kind {
	case monitor.EvFlush:
		return s.wr.WriteFlush(slot, ev.Thread)
	default: // EvDone (the relay forwards no other kinds)
		return s.wr.WriteDone(slot, ev.Thread)
	}
}

// finish completes the protocol on the relay goroutine: finish frame
// out, result frame in. On a broken stream it just tears the connection
// down and reports the degraded outcome the fail-open contract promises.
func (c *Client) finish(broken bool) (monitor.RelayOutcome, error) {
	if broken {
		c.met.degraded.Inc()
		c.conn.Close()
		return monitor.RelayOutcome{Health: monitor.Degraded}, nil
	}
	fail := func(err error) (monitor.RelayOutcome, error) {
		c.met.degraded.Inc()
		c.conn.Close()
		return monitor.RelayOutcome{Health: monitor.Degraded}, err
	}
	var t0 time.Time
	if c.met.finishNs != nil {
		t0 = time.Now()
	}
	if err := c.wr.WriteFinish(); err != nil {
		return fail(err)
	}
	if err := c.wr.Sync(); err != nil {
		return fail(err)
	}
	_ = c.conn.SetReadDeadline(time.Now().Add(c.cfg.ResultTimeout))
	rd := wire.NewReader(c.conn)
	rd.InstrumentRx(c.cfg.Metrics)
	for {
		f, err := rd.ReadFrame()
		if err != nil {
			return fail(err)
		}
		if f.Type != wire.FrameResult {
			continue // tolerate future frame types before the result
		}
		res := f.Result
		if c.met.finishNs != nil {
			c.met.finishNs.Observe(time.Since(t0).Nanoseconds())
		}
		if res.Health != monitor.Healthy {
			c.met.degraded.Inc()
		}
		return monitor.RelayOutcome{
			Detected:   res.Detected(),
			Violations: res.Violations,
			Stats:      res.Stats,
			Health:     res.Health,
		}, nil
	}
}
