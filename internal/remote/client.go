// Package remote moves the BLOCKWATCH monitor out of the monitored
// process: a Client implements monitor.Sink by framing the event stream
// onto a TCP or unix-socket connection (wire codec), and a Server demuxes
// per-connection streams into ordinary in-process monitors, one per
// monitored program, serving many programs concurrently. The split
// follows the same driver/worker separation the parallel Astrée
// implementation uses between its analysis workers and driver, and gives
// the reproduction something the paper's in-process design cannot have:
// the checker survives independently of the monitored program, and the
// exact event stream that led to a detection can be captured and replayed
// (internal/trace shares the codec).
//
// The client fails open, extending the monitor's in-process contract
// across the process boundary: a dead or slow daemon degrades coverage
// (Health() = Degraded, events discarded and counted as drops) but never
// blocks, crashes, or false-positives the monitored program.
//
// With a spool configured (ClientConfig.SpoolPath) the client is
// self-healing instead of merely fail-open: every outbound frame is
// teed to a bounded on-disk spool (internal/spool), so when the
// connection drops or stalls the client keeps the program running at
// full speed, appending to the spool, while re-dialing under the retry
// budget. A successful reconnect replays the spool onto the fresh
// connection — the stream is self-contained, so the new session's
// verdict is byte-identical to an uninterrupted run. If the daemon
// never comes back the spool is sealed into a `bwtrace replay`-able
// trace (SealedSpool reports the path) so the verdict is computable
// offline instead of lost. Degraded, never crashed.
package remote

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"time"

	"blockwatch/internal/core"
	"blockwatch/internal/metrics"
	"blockwatch/internal/monitor"
	"blockwatch/internal/spool"
	"blockwatch/internal/wire"
)

// DefaultResultTimeout bounds how long a closing client waits for the
// server's result frame before failing open.
const DefaultResultTimeout = 30 * time.Second

// DefaultWriteTimeout bounds each event/control frame write so a
// stalled daemon cannot block the sender forever.
const DefaultWriteTimeout = 10 * time.Second

// DefaultCoalesceBytes is the default frame-coalescing byte budget:
// consecutive same-thread event batches merge into one wire frame until
// the frame's encoded payload would pass it. 8 KiB merges roughly a
// dozen default Sender batches per frame while staying far under the
// codec's MaxPayload.
const DefaultCoalesceBytes = 8 << 10

// maxCoalesceBytes caps a configured budget well under wire.MaxPayload
// so a coalesced frame is always decodable on the far side.
const maxCoalesceBytes = wire.MaxPayload / 2

// Retry defaults (RetryConfig zero values).
const (
	DefaultDialTimeout   = 2 * time.Second
	DefaultRetryBase     = 50 * time.Millisecond
	DefaultRetryMax      = 2 * time.Second
	DefaultRetryJitter   = 0.2
	DefaultRetryAttempts = 1
)

// RetryConfig shapes the client's dial retry: the initial Dial, each
// mid-stream reconnect outage, and the finish-phase last chance all get
// a budget of Attempts dials separated by exponential backoff with
// jitter.
type RetryConfig struct {
	// Attempts is the dial budget per outage (0 = 1: a single attempt,
	// the pre-retry behavior).
	Attempts int
	// BaseDelay is the backoff before the second attempt
	// (0 = DefaultRetryBase); it doubles per failed attempt.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = DefaultRetryMax).
	MaxDelay time.Duration
	// Jitter randomizes each delay by ±Jitter fraction
	// (0 = DefaultRetryJitter; negative = no jitter).
	Jitter float64
	// DialTimeout bounds each individual dial (0 = DefaultDialTimeout).
	DialTimeout time.Duration
	// Seed seeds the jitter RNG so tests are deterministic (0 = 1).
	Seed int64
}

func (r RetryConfig) withDefaults() RetryConfig {
	if r.Attempts <= 0 {
		r.Attempts = DefaultRetryAttempts
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = DefaultRetryBase
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = DefaultRetryMax
	}
	if r.Jitter == 0 {
		r.Jitter = DefaultRetryJitter
	}
	if r.DialTimeout <= 0 {
		r.DialTimeout = DefaultDialTimeout
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// backoff returns the delay after the attempt-th consecutive failed
// dial (attempt >= 1): BaseDelay doubled per failure, capped at
// MaxDelay, jittered ±Jitter.
func (r RetryConfig) backoff(rng *rand.Rand, attempt int) time.Duration {
	d := r.BaseDelay
	for i := 1; i < attempt && d < r.MaxDelay; i++ {
		d *= 2
	}
	if d > r.MaxDelay {
		d = r.MaxDelay
	}
	if r.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + r.Jitter*(2*rng.Float64()-1)))
	}
	return d
}

// ClientConfig configures a remote monitoring client.
type ClientConfig struct {
	// Program names the monitored program (shown by the daemon).
	Program string
	// NumThreads is the SPMD thread count.
	NumThreads int
	// Plans is the check-plan table from the local static analysis; its
	// checker-facing reduction is shipped in the hello frame.
	Plans map[int]*core.CheckPlan
	// QueueCap, Overflow, SendSpins, SenderBatch configure the client's
	// producer front end exactly like the in-process monitor's
	// (monitor.Config semantics). Backpressure from the connection maps
	// onto the overflow policy: a slow daemon fills the per-thread
	// queues, and the policy decides between blocking and dropping.
	QueueCap    int
	Overflow    monitor.OverflowPolicy
	SendSpins   int
	SenderBatch int
	// CoalesceBytes is the frame-coalescing byte budget: consecutive
	// event batches from the same thread accumulate into one wire frame
	// until its encoded payload would exceed this many bytes
	// (0 = DefaultCoalesceBytes, negative = no coalescing — one frame per
	// relay batch, the pre-coalescing shape). Coalescing cuts per-frame
	// overhead — header and CRC bytes, spool write syscalls, flushes — on
	// busy streams without adding latency where it matters: a control
	// marker (barrier), a thread switch, or an idle relay always flushes
	// the pending frame first, so frames still never span a barrier and
	// quiet periods are never stale.
	CoalesceBytes int
	// ResultTimeout bounds the wait for the server's result frame after
	// the finish frame (0 = DefaultResultTimeout).
	ResultTimeout time.Duration
	// WriteTimeout is the per-write deadline on event/control frames
	// (0 = DefaultWriteTimeout, negative = no deadline). A write that
	// misses it counts as a transport fault: reconnect when spooling,
	// fail open otherwise.
	WriteTimeout time.Duration
	// Retry shapes dial retry and reconnect backoff.
	Retry RetryConfig
	// SpoolPath, when non-empty, tees every outbound frame to a bounded
	// on-disk spool at that path, enabling mid-stream reconnect (exact
	// replay of the session onto a fresh connection) and seal-to-trace
	// on terminal failure. The file is removed when the session ends
	// with a daemon verdict.
	SpoolPath string
	// SpoolMaxBytes bounds the spool (0 = spool.DefaultMaxBytes). An
	// overflowed spool can no longer reconstruct the session, so
	// overflow turns the next transport fault terminal (fail open).
	SpoolMaxBytes int64
	// WrapConn, when non-nil, wraps every dialed connection (including
	// reconnects). The network-fault injector hooks here.
	WrapConn func(net.Conn) net.Conn
	// Metrics, when non-nil, receives the client's wire and session
	// metrics (bw_wire_*, bw_remote_*, bw_spool_*) plus the relay's
	// bw_relay_*.
	Metrics *metrics.Registry
}

func (cfg ClientConfig) writeTimeout() time.Duration {
	if cfg.WriteTimeout == 0 {
		return DefaultWriteTimeout
	}
	if cfg.WriteTimeout < 0 {
		return 0
	}
	return cfg.WriteTimeout
}

// clientMetrics is the client's handle set (zero value = detached).
type clientMetrics struct {
	dials       *metrics.Counter   // bw_remote_dials_total
	dialNs      *metrics.Histogram // bw_remote_dial_ns
	finishNs    *metrics.Histogram // bw_remote_finish_ns
	degraded    *metrics.Counter   // bw_remote_degraded_total
	streamErrs  *metrics.Counter   // bw_remote_stream_errors_total
	redials     *metrics.Counter   // bw_remote_redials_total
	reconnects  *metrics.Counter   // bw_remote_reconnects_total
	spoolFrames *metrics.Counter   // bw_spool_frames_total
	spoolBytes  *metrics.Counter   // bw_spool_bytes_total
	spoolOver   *metrics.Counter   // bw_spool_overflows_total
	spoolReplay *metrics.Counter   // bw_spool_replays_total
	spoolSealed *metrics.Counter   // bw_spool_sealed_total
}

func newClientMetrics(r *metrics.Registry) clientMetrics {
	if r == nil {
		return clientMetrics{}
	}
	return clientMetrics{
		dials: r.Counter("bw_remote_dials_total",
			"connections dialed to a monitoring daemon"),
		dialNs: r.Histogram("bw_remote_dial_ns",
			"dial + hello-exchange latency, ns", metrics.ExpBuckets(10_000, 4, 10)),
		finishNs: r.Histogram("bw_remote_finish_ns",
			"finish-protocol latency (finish frame out to result frame in), ns",
			metrics.ExpBuckets(10_000, 4, 10)),
		degraded: r.Counter("bw_remote_degraded_total",
			"sessions that ended degraded (fail-open outcome)"),
		streamErrs: r.Counter("bw_remote_stream_errors_total",
			"transport faults on the event stream (write errors, timeouts)"),
		redials: r.Counter("bw_remote_redials_total",
			"reconnect dial attempts after a transport fault"),
		reconnects: r.Counter("bw_remote_reconnects_total",
			"successful reconnects (spool replayed onto a fresh connection)"),
		spoolFrames: r.Counter("bw_spool_frames_total",
			"frames appended to the on-disk spool"),
		spoolBytes: r.Counter("bw_spool_bytes_total",
			"bytes appended to the on-disk spool"),
		spoolOver: r.Counter("bw_spool_overflows_total",
			"spools that hit their byte bound"),
		spoolReplay: r.Counter("bw_spool_replays_total",
			"spool replays onto a fresh connection"),
		spoolSealed: r.Counter("bw_spool_sealed_total",
			"spools sealed into offline-replayable traces"),
	}
}

// Selector chooses the daemon address for each connection attempt of a
// session. A single-daemon session uses the static selector behind Dial;
// a fleet session plugs in a placement policy (internal/fleet ranks
// members by health-weighted rendezvous hashing), so a mid-run failover
// — redial, spool replay, fresh hello — lands on the next-ranked member
// instead of hammering a dead one.
//
// Calls arrive from the constructor and then only from the relay
// goroutine, so implementations need no locking against the client
// (they may still need it internally if a shared pool feeds many
// sessions).
type Selector interface {
	// Next returns the address (Dial syntax) for the session's next
	// connection attempt, or "" when no member is currently available
	// (the attempt fails and the retry budget decides what happens).
	Next() string
	// Observe reports the outcome of the most recent attempt at addr: a
	// nil err after a successful dial+hello, a non-nil err after a failed
	// dial or a transport fault on the established connection.
	Observe(addr string, err error)
}

// staticAddr is the single-daemon Selector: always the same address,
// feedback discarded.
type staticAddr string

func (s staticAddr) Next() string        { return string(s) }
func (staticAddr) Observe(string, error) {}

// Client is a monitor.Sink whose checking back end lives in a bwmonitord
// daemon. Create with Dial or NewClient, then use exactly like a
// monitor.Monitor: Start, per-thread Senders (or Send), Close, then
// Detected/Violations/Health/Stats.
type Client struct {
	*monitor.Relay
	cfg ClientConfig
	met clientMetrics

	// Connection and spool state. Written by the constructor before the
	// relay exists and by the relay goroutine afterwards; read elsewhere
	// only after Relay.Close has joined the relay goroutine.
	sel       Selector // nil = reconnect disabled (NewClient over a given conn)
	addr      string   // address of the live (or most recent) connection
	conn      net.Conn
	wr        *wire.Writer
	connected bool
	dirty     bool // frames buffered in wr, not yet flushed to the conn
	terminal  bool // mid-run retry budget exhausted
	attempt   int  // consecutive failed dials in the current outage
	nextDial  time.Time
	rng       *rand.Rand

	sp         *spool.Spool
	spoolDead  bool // spool overflowed or its disk write failed
	sealedPath string
	reconnects int

	// Frame coalescer (relay goroutine only): branch events of one
	// thread accumulated toward a single merged wire frame. coBudget is
	// the encoded-payload byte budget (0 = coalescing disabled).
	coBudget int
	coSlot   int
	coEvs    []monitor.Event
	coBytes  int
}

// SplitAddr resolves the CLI address syntax into a (network, address)
// pair for net.Dial/net.Listen: "unix:<path>" or any address containing
// a path separator selects a unix socket; everything else is TCP.
func SplitAddr(addr string) (network, address string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if rest, ok := strings.CutPrefix(addr, "tcp:"); ok {
		return "tcp", rest
	}
	if strings.ContainsRune(addr, '/') {
		return "unix", addr
	}
	return "tcp", addr
}

// Dial connects to a bwmonitord daemon under the retry budget and
// performs the hello exchange. Without a spool, exhausting the budget is
// a synchronous error (a daemon that was never there is a configuration
// problem). With a spool, Dial always returns a working client: if the
// daemon is unreachable the session starts disconnected, events spool to
// disk, and the client keeps re-dialing mid-run and at finish.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	return DialSelector(staticAddr(addr), cfg)
}

// DialSelector is Dial with a pluggable address policy: every connection
// attempt of the session — the initial dial, mid-run reconnects, and the
// finish-phase last chance — asks sel for the address and reports the
// outcome back. With a spool configured, a transport fault mid-run
// therefore fails the session over to whatever member sel ranks next,
// replaying the spooled stream through a fresh hello, so the verdict is
// byte-identical to an uninterrupted single-daemon run.
func DialSelector(sel Selector, cfg ClientConfig) (*Client, error) {
	var t0 time.Time
	if cfg.Metrics != nil {
		t0 = time.Now()
	}
	c, err := newClient(cfg)
	if err != nil {
		return nil, err
	}
	c.sel = sel
	dialErr := c.connectBlocking(c.cfg.Retry.Attempts)
	if dialErr != nil {
		if c.sp == nil {
			return nil, fmt.Errorf("remote monitor: %w", dialErr)
		}
		// Self-healing start: run disconnected, spool, retry mid-run.
		c.Degrade()
		c.attempt = 0
		c.nextDial = time.Now().Add(c.cfg.Retry.backoff(c.rng, 1))
	}
	if err := c.buildRelay(); err != nil {
		c.teardown()
		return nil, err
	}
	c.met.dials.Inc()
	if cfg.Metrics != nil {
		c.met.dialNs.Observe(time.Since(t0).Nanoseconds())
	}
	return c, nil
}

// NewClient builds a client over an established connection and writes
// the hello frame. Construction errors are returned synchronously (a
// daemon that refuses the hello is a configuration problem, not a
// mid-run failure, so it does not fail open). Reconnect is disabled —
// the client does not know how to re-dial a connection it was handed —
// but a configured spool still tees the stream and seals it on failure.
func NewClient(conn net.Conn, cfg ClientConfig) (*Client, error) {
	c, err := newClient(cfg)
	if err != nil {
		return nil, err
	}
	c.adopt(conn)
	if err := c.writeHello(); err != nil {
		c.teardown()
		return nil, fmt.Errorf("remote monitor hello: %w", err)
	}
	if err := c.buildRelay(); err != nil {
		c.teardown()
		return nil, err
	}
	return c, nil
}

// newClient validates the config and sets up everything except the
// connection: metrics, retry state, and the spool (which immediately
// stores the hello so a replay is always self-contained).
func newClient(cfg ClientConfig) (*Client, error) {
	if cfg.NumThreads < 1 {
		return nil, monitor.ErrNoThreads
	}
	if cfg.Plans == nil {
		return nil, monitor.ErrNoPlans
	}
	if cfg.ResultTimeout <= 0 {
		cfg.ResultTimeout = DefaultResultTimeout
	}
	cfg.Retry = cfg.Retry.withDefaults()
	c := &Client{
		cfg: cfg,
		met: newClientMetrics(cfg.Metrics),
		rng: rand.New(rand.NewSource(cfg.Retry.Seed)),
	}
	switch {
	case cfg.CoalesceBytes == 0:
		c.coBudget = DefaultCoalesceBytes
	case cfg.CoalesceBytes > 0:
		c.coBudget = min(cfg.CoalesceBytes, maxCoalesceBytes)
	}
	if cfg.SpoolPath != "" {
		sp, err := spool.Create(cfg.SpoolPath, cfg.SpoolMaxBytes, c.hello())
		if err != nil {
			return nil, fmt.Errorf("remote monitor: %w", err)
		}
		c.sp = sp
		c.met.spoolFrames.Inc()
		c.met.spoolBytes.Add(uint64(sp.Size()))
	}
	return c, nil
}

func (c *Client) hello() *wire.Hello {
	return wire.HelloFromPlans(c.cfg.Program, c.cfg.NumThreads, c.cfg.Plans)
}

func (c *Client) buildRelay() error {
	relay, err := monitor.NewRelay(monitor.RelayConfig{
		NumThreads:  c.cfg.NumThreads,
		QueueCap:    c.cfg.QueueCap,
		Overflow:    c.cfg.Overflow,
		SendSpins:   c.cfg.SendSpins,
		SenderBatch: c.cfg.SenderBatch,
		Stream:      (*clientStream)(c),
		Finish:      c.finish,
		Metrics:     c.cfg.Metrics,
	})
	if err != nil {
		return err
	}
	c.Relay = relay
	return nil
}

// teardown releases constructor-held resources on an error path.
func (c *Client) teardown() {
	if c.conn != nil {
		c.conn.Close()
	}
	if c.sp != nil {
		c.sp.Remove()
	}
}

// Close drains and closes the relay (running the finish protocol), then
// closes the connection. Idempotent.
func (c *Client) Close() {
	c.Relay.Close()
	if c.conn != nil {
		c.conn.Close()
	}
}

// SealedSpool returns the path of the sealed, `bwtrace replay`-able
// spool when the session ended without a daemon verdict, "" otherwise.
// Meaningful after Close.
func (c *Client) SealedSpool() string { return c.sealedPath }

// Reconnects reports how many times the session recovered a dropped
// connection by replaying the spool. Meaningful after Close.
func (c *Client) Reconnects() int { return c.reconnects }

// adopt installs conn as the live connection.
func (c *Client) adopt(conn net.Conn) {
	c.conn = conn
	c.wr = wire.NewWriter(conn)
	c.wr.InstrumentTx(c.cfg.Metrics)
	c.connected = true
	c.dirty = false
	c.attempt = 0
}

// writeHello sends the hello over the live writer (the no-spool path;
// with a spool, connects replay the spooled hello instead).
func (c *Client) writeHello() error {
	if err := c.wr.WriteHello(c.hello()); err != nil {
		return err
	}
	return c.wr.Sync()
}

// deadlineWriter re-arms the write deadline before every write; the
// spool replay streams through it so a stalled daemon cannot wedge a
// reconnect either.
type deadlineWriter struct {
	conn    net.Conn
	timeout time.Duration
}

func (d *deadlineWriter) Write(p []byte) (int, error) {
	if d.timeout > 0 {
		_ = d.conn.SetWriteDeadline(time.Now().Add(d.timeout))
	}
	return d.conn.Write(p)
}

// errNoMember is the dial error when the selector has no address to
// offer (every fleet member down or draining).
var errNoMember = errors.New("remote monitor: no fleet member available")

// dialOnce makes one connection attempt at the selector's next address
// and, on success, makes the new connection current: with a spool the
// whole session history (hello first) is replayed onto it, so the daemon
// sees a complete fresh session; without one the hello is written
// directly. The attempt's outcome is reported back to the selector, so a
// placement pool learns about dead members immediately instead of at its
// next probe tick.
func (c *Client) dialOnce() error {
	addr := c.sel.Next()
	if addr == "" {
		return errNoMember
	}
	network, address := SplitAddr(addr)
	d := net.Dialer{Timeout: c.cfg.Retry.DialTimeout}
	conn, err := d.Dial(network, address)
	if err != nil {
		c.sel.Observe(addr, err)
		return err
	}
	if c.cfg.WrapConn != nil {
		conn = c.cfg.WrapConn(conn)
	}
	if c.sp != nil {
		if _, err := c.sp.ReplayTo(&deadlineWriter{conn: conn, timeout: c.cfg.writeTimeout()}); err != nil {
			conn.Close()
			c.sel.Observe(addr, err)
			return fmt.Errorf("spool replay: %w", err)
		}
		c.met.spoolReplay.Inc()
	}
	wasLive := c.conn != nil
	c.addr = addr
	c.adopt(conn)
	if c.sp == nil {
		if err := c.writeHello(); err != nil {
			c.dropConn()
			c.sel.Observe(addr, err)
			return err
		}
	} else if wasLive {
		c.reconnects++
		c.met.reconnects.Inc()
	}
	c.sel.Observe(addr, nil)
	return nil
}

// connectBlocking dials under a budget with real backoff sleeps (the
// initial Dial and the finish phase, where blocking is acceptable).
func (c *Client) connectBlocking(budget int) error {
	var err error
	for i := 0; i < budget; i++ {
		if i > 0 {
			time.Sleep(c.cfg.Retry.backoff(c.rng, i))
		}
		c.met.redials.Inc()
		if err = c.dialOnce(); err == nil {
			return nil
		}
	}
	return err
}

// dropConn closes the live connection and marks the client
// disconnected. The next stream call may re-dial immediately.
func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
	}
	c.connected = false
	c.dirty = false
}

// onStreamError handles a transport fault on the live connection:
// degrade (a detector fault happened, even if we recover), tell the
// selector the member misbehaved (a fleet pool deranks it so the next
// dial fails over), drop the connection, and schedule an immediate
// reconnect attempt.
func (c *Client) onStreamError(err error) {
	c.met.streamErrs.Inc()
	if c.sel != nil {
		c.sel.Observe(c.addr, err)
	}
	c.Degrade()
	c.dropConn()
	c.attempt = 0
	c.nextDial = time.Now()
}

// canReconnect reports whether a mid-run reconnect is possible: it
// needs a selector to pick an address and an intact spool to replay.
func (c *Client) canReconnect() bool {
	return c.sel != nil && c.sp != nil && !c.spoolDead && !c.terminal
}

// maybeReconnect makes at most one non-blocking reconnect attempt,
// honoring the backoff schedule. Called from the stream path, so it
// must never sleep: between attempts the program keeps running and
// events keep spooling.
func (c *Client) maybeReconnect() {
	if c.connected || !c.canReconnect() || time.Now().Before(c.nextDial) {
		return
	}
	c.met.redials.Inc()
	if err := c.dialOnce(); err != nil {
		c.attempt++
		if c.attempt >= c.cfg.Retry.Attempts {
			// Budget exhausted: stop dialing mid-run. The spool keeps
			// absorbing events; the finish phase gets one last budget.
			c.terminal = true
			return
		}
		c.nextDial = time.Now().Add(c.cfg.Retry.backoff(c.rng, c.attempt))
	}
}

// spoolTee appends one frame's worth of stream to the spool, tracking
// metrics and the spool's health.
func (c *Client) spoolTee(write func() error) {
	if c.sp == nil || c.spoolDead {
		return
	}
	before := c.sp.Size()
	if err := write(); err != nil {
		c.spoolDead = true
		if err == spool.ErrSpoolFull {
			c.met.spoolOver.Inc()
		}
		c.Degrade() // resilience lost even if the live stream is fine
		return
	}
	c.met.spoolFrames.Inc()
	c.met.spoolBytes.Add(uint64(c.sp.Size() - before))
}

// clientStream adapts the client to the relay's EventStream. Calls
// arrive only from the relay goroutine.
type clientStream Client

// status translates the client's post-call state into the relay
// contract: nil while the frame is safely on the wire or in the spool,
// the transport error once neither holds (relay switches to fail-open
// discard mode).
func (c *Client) status(err error) error {
	if c.connected || (c.sp != nil && !c.spoolDead) {
		return nil
	}
	if err != nil {
		return err
	}
	return fmt.Errorf("remote monitor: connection lost and spool unavailable")
}

func (c *Client) armWrite() {
	if wt := c.cfg.writeTimeout(); wt > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(wt))
	}
}

func (s *clientStream) StreamEvents(slot int, evs []monitor.Event) error {
	c := (*Client)(s)
	if c.coBudget > 0 {
		return c.coalesce(slot, evs)
	}
	return c.writeEvents(slot, evs)
}

// coalesce buffers one relay batch toward a merged frame, flushing the
// pending frame first when the thread changes or the byte budget would
// be passed. The buffered events are safe: they flush before any control
// marker, on relay idle, and before the finish protocol, and they only
// enter the spool when their frame is encoded — so a reconnect replay
// can never duplicate them.
func (c *Client) coalesce(slot int, evs []monitor.Event) error {
	if len(c.coEvs) > 0 && c.coSlot != slot {
		if err := c.flushCoalesced(); err != nil {
			return err
		}
	}
	add := wire.EventsSize(slot, evs)
	if len(c.coEvs) > 0 && c.coBytes+add+wire.EventsFrameOverhead > c.coBudget {
		if err := c.flushCoalesced(); err != nil {
			return err
		}
	}
	c.coSlot = slot
	c.coEvs = append(c.coEvs, evs...)
	c.coBytes += add
	if c.coBytes+wire.EventsFrameOverhead >= c.coBudget {
		return c.flushCoalesced()
	}
	return c.status(nil)
}

// flushCoalesced encodes the pending coalesced events as one wire frame
// (no-op when nothing is pending).
func (c *Client) flushCoalesced() error {
	if len(c.coEvs) == 0 {
		return c.status(nil)
	}
	slot, evs := c.coSlot, c.coEvs
	err := c.writeEvents(slot, evs)
	c.coEvs = c.coEvs[:0]
	c.coBytes = 0
	return err
}

// writeEvents puts one events frame onto the stream: reconnect BEFORE
// teeing the frame — a successful redial replays the spool, so appending
// first would send this frame twice (once in the replay, once live) and
// fabricate duplicate events — then the spool tee, then the live write.
func (c *Client) writeEvents(slot int, evs []monitor.Event) error {
	c.maybeReconnect()
	c.spoolTee(func() error { return c.sp.WriteEvents(slot, evs) })
	var err error
	if c.connected {
		c.armWrite()
		if err = c.wr.WriteEvents(slot, evs); err != nil {
			c.onStreamError(err)
		} else {
			c.dirty = true
		}
	}
	return c.status(err)
}

func (s *clientStream) StreamControl(slot int, ev monitor.Event) error {
	c := (*Client)(s)
	// A control marker is a barrier edge: the pending coalesced events
	// must hit the stream (and the spool) first so a frame never spans
	// the barrier.
	if err := c.flushCoalesced(); err != nil {
		return err
	}
	write := func(w interface {
		WriteFlush(int, int32) error
		WriteDone(int, int32) error
	}) error {
		if ev.Kind == monitor.EvFlush {
			return w.WriteFlush(slot, ev.Thread)
		}
		return w.WriteDone(slot, ev.Thread) // the relay forwards no other kinds
	}
	c.maybeReconnect() // before the tee — see writeEvents
	c.spoolTee(func() error { return write(c.sp) })
	var err error
	if c.connected {
		c.armWrite()
		// Control markers are barrier edges: flush the buffered writer so
		// a dead daemon surfaces at a frame boundary, not a buffer-full.
		if err = write(c.wr); err == nil {
			err = c.wr.Sync()
		}
		if err != nil {
			c.onStreamError(err)
		} else {
			c.dirty = false
		}
	}
	return c.status(err)
}

// StreamIdle is the relay's quiet-period hook: flush buffered frames so
// a broken transport is noticed between bursts, and pace reconnect
// attempts while the daemon is down.
func (s *clientStream) StreamIdle() error {
	c := (*Client)(s)
	// A quiet relay means no more batches are coming for now: the
	// coalescer must not sit on events across the idle gap.
	if err := c.flushCoalesced(); err != nil {
		return err
	}
	c.maybeReconnect()
	var err error
	if c.connected && c.dirty {
		c.armWrite()
		if err = c.wr.Sync(); err != nil {
			c.onStreamError(err)
		} else {
			c.dirty = false
		}
	}
	return c.status(err)
}

// finish completes the protocol on the relay goroutine: finish frame
// out, result frame in — reconnecting under one last retry budget if
// the connection is down or dies mid-protocol. When no connection can
// be had, the spool is sealed into an offline-replayable trace and the
// degraded outcome the fail-open contract promises is reported.
func (c *Client) finish(broken bool) (monitor.RelayOutcome, error) {
	// Any coalesced remainder must precede the finish frame (clean path)
	// or make it into the sealed prefix (broken path).
	_ = c.flushCoalesced()
	if broken {
		// The relay already discarded events: no complete stream exists
		// anywhere, so there is nothing to replay. Seal whatever prefix
		// the spool holds (a truncated trace is still evidence).
		c.met.degraded.Inc()
		c.dropConn()
		c.seal()
		return monitor.RelayOutcome{Health: monitor.Degraded}, nil
	}
	var t0 time.Time
	if c.met.finishNs != nil {
		t0 = time.Now()
	}
	// The program is done: blocking is acceptable now, so the finish
	// phase gets a fresh budget of real backoff-separated dials, capped
	// across protocol retries (a daemon that accepts and immediately
	// drops connections must not loop us forever).
	budget := c.cfg.Retry.Attempts
	var lastErr error
	for {
		if !c.connected {
			if c.sel == nil || c.sp == nil || c.spoolDead || budget <= 0 {
				break
			}
			used := c.cfg.Retry.Attempts - budget
			if used > 0 {
				time.Sleep(c.cfg.Retry.backoff(c.rng, used))
			}
			budget--
			c.met.redials.Inc()
			if err := c.dialOnce(); err != nil {
				lastErr = err
				continue
			}
		}
		res, err := c.finishOnce()
		if err == nil {
			if c.met.finishNs != nil {
				c.met.finishNs.Observe(time.Since(t0).Nanoseconds())
			}
			if res.Health != monitor.Healthy {
				c.met.degraded.Inc()
			}
			if c.sp != nil {
				c.sp.Remove() // verdict obtained: the buffer served its purpose
			}
			return monitor.RelayOutcome{
				Detected:   res.Detected(),
				Violations: res.Violations,
				Stats:      res.Stats,
				Health:     res.Health,
			}, nil
		}
		lastErr = err
		c.onStreamError(err)
	}
	// No daemon verdict. Seal the spool so the verdict is computable
	// offline, and fail open.
	c.met.degraded.Inc()
	c.seal()
	return monitor.RelayOutcome{Health: monitor.Degraded}, lastErr
}

// finishOnce runs one attempt of the finish protocol on the live
// connection.
func (c *Client) finishOnce() (*wire.Result, error) {
	c.armWrite()
	if err := c.wr.WriteFinish(); err != nil {
		return nil, err
	}
	if err := c.wr.Sync(); err != nil {
		return nil, err
	}
	c.dirty = false
	_ = c.conn.SetReadDeadline(time.Now().Add(c.cfg.ResultTimeout))
	rd := wire.NewReader(c.conn)
	rd.InstrumentRx(c.cfg.Metrics)
	for {
		f, err := rd.ReadFrame()
		if err != nil {
			return nil, err
		}
		switch f.Type {
		case wire.FrameResult:
			return f.Result, nil
		case wire.FrameReject:
			return nil, fmt.Errorf("remote monitor: session rejected: %s", f.Reject)
		default:
			// tolerate future frame types before the result
		}
	}
}

// seal turns the spool into an offline-replayable trace and records its
// path. On an unusable spool (disk error) sealing fails quietly — the
// degraded outcome already tells the caller coverage was lost.
func (c *Client) seal() {
	if c.sp == nil {
		return
	}
	if err := c.sp.Seal(nil); err == nil {
		c.sealedPath = c.sp.Path()
		c.met.spoolSealed.Inc()
	}
	c.sp.Close()
}
