package remote

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"blockwatch/internal/inject"
	"blockwatch/internal/interp"
	"blockwatch/internal/monitor"
	"blockwatch/internal/trace"
	"blockwatch/internal/wire"
)

// checkNoGoroutineLeak polls until the goroutine count returns to (near)
// the baseline taken at the start of the test.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
}

// TestClientReconnectIdenticalVerdict is the tentpole acceptance test:
// a connection drop mid-stream, with spooling and retry enabled, must
// yield the same verdict as the in-process monitor — the client redials,
// replays the spooled history into a fresh session, and the daemon's
// verdict covers the complete stream exactly once.
func TestClientReconnectIdenticalVerdict(t *testing.T) {
	before := runtime.NumGoroutine()
	addr, _ := startServer(t, ServerConfig{})
	mod, plans := kernelPlans(t, "fft")

	clean := runInProcess(t, mod, plans, nil)
	fault := &inject.Fault{Type: inject.BranchFlip, Thread: 1, Seq: clean.BranchCounts[1] / 2}

	for _, tc := range []struct {
		label string
		fault *inject.Fault
	}{{"clean", nil}, {"faulty", fault}} {
		local := runInProcess(t, mod, plans, tc.fault)
		ij := inject.NewNetInjector(inject.NetFaultPlan{Kind: inject.NetDrop, AfterFrames: 8})
		client, err := Dial(addr, ClientConfig{
			Program: "fft", NumThreads: testThreads, Plans: plans,
			SpoolPath:     filepath.Join(t.TempDir(), "fft.bwspool"),
			WrapConn:      ij.Wrap,
			ResultTimeout: 10 * time.Second,
			Retry: RetryConfig{
				Attempts: 5, BaseDelay: time.Millisecond,
				MaxDelay: 20 * time.Millisecond, DialTimeout: time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := interp.Options{Threads: testThreads, Mode: interp.MonitorActive, Plans: plans, Sink: client}
		if tc.fault != nil {
			opts.Fault = inject.NewSingle(*tc.fault)
		}
		res, err := interp.Run(mod, opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		client.Close()

		if !ij.Fired() {
			t.Fatalf("%s: drop fault never fired (frames=%d)", tc.label, ij.Frames())
		}
		if client.Reconnects() < 1 {
			t.Fatalf("%s: client never reconnected", tc.label)
		}
		if res.MonitorHealth != monitor.Degraded {
			t.Errorf("%s: health = %v, want Degraded (a drop happened)", tc.label, res.MonitorHealth)
		}
		if sealed := client.SealedSpool(); sealed != "" {
			t.Errorf("%s: spool sealed (%s) even though the verdict was delivered", tc.label, sealed)
		}
		if !reflect.DeepEqual(local.EventCounts, res.EventCounts) ||
			!reflect.DeepEqual(local.BranchCounts, res.BranchCounts) {
			t.Logf("%s: faulty execution diverged under different sink timing — verdict comparison skipped", tc.label)
			continue
		}
		if local.Detected != res.Detected {
			t.Errorf("%s: Detected: in-process %t, reconnected remote %t", tc.label, local.Detected, res.Detected)
		}
		if !reflect.DeepEqual(local.Violations, res.Violations) {
			t.Errorf("%s: violations differ\n in-process: %v\n remote:     %v", tc.label, local.Violations, res.Violations)
		}
		ls, rs := local.MonitorStats, res.MonitorStats
		if ls.Events != rs.Events || ls.Instances != rs.Instances || ls.Flushes != rs.Flushes {
			t.Errorf("%s: stats differ after reconnect (events duplicated or lost): in-process %+v, remote %+v",
				tc.label, ls, rs)
		}
	}
	checkNoGoroutineLeak(t, before)
}

// TestSpoolReplayAfterDaemonKill: the daemon dies for good mid-run. The
// program still completes (fail-open), the client seals its spool, and
// an offline replay of the sealed file reproduces the in-process
// verdict.
func TestSpoolReplayAfterDaemonKill(t *testing.T) {
	before := runtime.NumGoroutine()
	mod, plans := kernelPlans(t, "fft")
	clean := runInProcess(t, mod, plans, nil)
	fault := &inject.Fault{Type: inject.BranchFlip, Thread: 1, Seq: clean.BranchCounts[1] / 2}
	local := runInProcess(t, mod, plans, fault)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Take the hello, then die: close the session AND the listener so
		// every reconnect attempt is refused.
		buf := make([]byte, 4096)
		conn.Read(buf)
		conn.Close()
		ln.Close()
	}()

	spoolPath := filepath.Join(t.TempDir(), "fft.bwspool")
	client, err := Dial(ln.Addr().String(), ClientConfig{
		Program: "fft", NumThreads: testThreads, Plans: plans,
		SpoolPath:     spoolPath,
		ResultTimeout: time.Second,
		Retry: RetryConfig{
			Attempts: 2, BaseDelay: time.Millisecond,
			MaxDelay: 10 * time.Millisecond, DialTimeout: time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	res, err := interp.Run(mod, interp.Options{
		Threads: testThreads, Mode: interp.MonitorActive, Plans: plans, Sink: client,
		Fault: inject.NewSingle(*fault),
	})
	if err != nil {
		t.Fatalf("program did not complete after daemon death: %v", err)
	}
	client.Close()

	if !res.Clean() {
		t.Errorf("program trapped after daemon death: %+v", res.Traps)
	}
	if res.MonitorHealth != monitor.Degraded {
		t.Errorf("health = %v, want Degraded", res.MonitorHealth)
	}
	sealed := client.SealedSpool()
	if sealed == "" {
		t.Fatal("no sealed spool after terminal daemon death")
	}

	f, err := os.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out, err := trace.Replay(f, trace.ReplayConfig{})
	if err != nil {
		t.Fatalf("sealed spool does not replay: %v", err)
	}
	if !out.Clean {
		t.Error("sealed spool replays as truncated, want clean (finish marker present)")
	}
	if !reflect.DeepEqual(local.EventCounts, res.EventCounts) ||
		!reflect.DeepEqual(local.BranchCounts, res.BranchCounts) {
		t.Log("faulty execution diverged under different sink timing — verdict comparison skipped")
	} else {
		if out.Detected != local.Detected {
			t.Errorf("replayed Detected = %t, in-process %t", out.Detected, local.Detected)
		}
		if !reflect.DeepEqual(out.Violations, local.Violations) {
			t.Errorf("replayed violations differ\n in-process: %v\n replay:     %v", local.Violations, out.Violations)
		}
		if out.Stats.Events != local.MonitorStats.Events {
			t.Errorf("replayed %d events, in-process saw %d", out.Stats.Events, local.MonitorStats.Events)
		}
	}
	checkNoGoroutineLeak(t, before)
}

// rawFrame encodes one wire frame by hand (type, length, payload, CRC).
func rawFrame(typ byte, payload []byte) []byte {
	out := make([]byte, 0, len(payload)+9)
	out = append(out, typ)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
	out = append(out, payload...)
	tbl := crc32.MakeTable(crc32.Castagnoli)
	crc := crc32.Update(0, tbl, []byte{typ})
	crc = crc32.Update(crc, tbl, payload)
	return binary.LittleEndian.AppendUint32(out, crc)
}

// TestServerSurvivesHostileHellos: truncated, wrong-version, and
// oversize hello frames each kill only their own session — clean close,
// no panic, no goroutine leak, and the daemon keeps serving.
func TestServerSurvivesHostileHellos(t *testing.T) {
	before := runtime.NumGoroutine()
	addr, _ := startServer(t, ServerConfig{})

	// Wrong-version hello: valid CRC, magic, but version 99.
	var wrongVersion []byte
	wrongVersion = binary.LittleEndian.AppendUint32(wrongVersion, wire.Magic)
	wrongVersion = binary.AppendUvarint(wrongVersion, 99)        // version
	wrongVersion = binary.AppendUvarint(wrongVersion, 1)         // len("x")
	wrongVersion = append(wrongVersion, 'x')                     // program
	wrongVersion = binary.AppendUvarint(wrongVersion, uint64(4)) // threads
	wrongVersion = binary.AppendUvarint(wrongVersion, 0)         // plans

	cases := []struct {
		label string
		bytes []byte
	}{
		// Header claims 100 payload bytes; only 10 arrive before the close.
		{"truncated", append([]byte{1, 100, 0, 0, 0}, make([]byte, 10)...)},
		{"wrong-version", rawFrame(1, wrongVersion)},
		// Length prefix beyond MaxPayload: must be refused before any
		// payload is read or allocated.
		{"oversize", []byte{1, 0, 0, 0x40, 0}}, // 4 MiB length prefix
	}
	for _, tc := range cases {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(tc.bytes); err != nil {
			t.Fatalf("%s: write: %v", tc.label, err)
		}
		// Half-close: truncation only becomes visible at EOF.
		conn.(*net.TCPConn).CloseWrite()
		// The server must close the session promptly: the next read ends
		// with EOF/reset instead of hanging.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 64)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		conn.Close()
	}

	// The daemon is still healthy: a real session works.
	mod, plans := kernelPlans(t, "fft")
	local := runInProcess(t, mod, plans, nil)
	remote := runRemote(t, addr, "fft", mod, plans, nil)
	compareRuns(t, "fft/after-hostile-hellos", local, remote)
	checkNoGoroutineLeak(t, before)
}

// TestServerMaxConnsReject: at the session limit the daemon sends a
// polite reject frame and closes; the slot frees when a session ends.
func TestServerMaxConnsReject(t *testing.T) {
	addr, srv := startServer(t, ServerConfig{MaxConns: 1, IdleTimeout: 30 * time.Second})

	// First connection occupies the only slot (registered by the accept
	// loop before it accepts the next connection, so ordering is fixed).
	hog, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}

	over, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	over.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := wire.NewReader(over).ReadFrame()
	if err != nil {
		t.Fatalf("no reject frame: %v", err)
	}
	if f.Type != wire.FrameReject {
		t.Fatalf("frame type = %d, want FrameReject", f.Type)
	}
	if f.Reject == "" {
		t.Error("reject frame carries no reason")
	}
	over.Close()
	if got := srv.Rejected(); got != 1 {
		t.Errorf("Rejected() = %d, want 1", got)
	}

	// Freeing the slot lets a real session in.
	hog.Close()
	mod, plans := kernelPlans(t, "fft")
	deadline := time.Now().Add(5 * time.Second)
	for {
		client, err := Dial(addr, ClientConfig{Program: "fft", NumThreads: testThreads, Plans: plans})
		if err != nil {
			t.Fatal(err)
		}
		res, err := interp.Run(mod, interp.Options{
			Threads: testThreads, Mode: interp.MonitorActive, Plans: plans, Sink: client,
		})
		if err != nil {
			t.Fatal(err)
		}
		client.Close()
		if res.MonitorHealth == monitor.Healthy {
			break // slot was free
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after the hogging connection closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerDrainLifecycle: Drain stops accepting immediately, reports
// draining, lets the reaper finish stale sessions, and ends closed.
func TestServerDrainLifecycle(t *testing.T) {
	addr, srv := startServer(t, ServerConfig{IdleTimeout: 200 * time.Millisecond})

	// A hello-less connection is a live session until the idle deadline
	// reaps it.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	done := make(chan struct{})
	go func() { srv.Drain(10 * time.Second); close(done) }()

	// Draining: new connections must be refused (listener closed).
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			break
		}
		c.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting while draining")
		}
		time.Sleep(5 * time.Millisecond)
	}

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned (stale session not reaped)")
	}
	if srv.Draining() {
		t.Error("Draining() still true after drain completed (server is closed)")
	}
}

// TestListenCleansStaleSocket: a leftover socket file from a crashed
// daemon is removed; a live daemon's socket and a non-socket file are
// both refused.
func TestListenCleansStaleSocket(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bw.sock")

	// Simulate a crash: listener closed without unlinking its file.
	stale, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	stale.(*net.UnixListener).SetUnlinkOnClose(false)
	stale.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("stale socket file missing: %v", err)
	}

	ln, err := Listen("unix:" + path)
	if err != nil {
		t.Fatalf("Listen did not clean the stale socket: %v", err)
	}

	// The socket is now live: a second daemon must be refused.
	if _, err := Listen("unix:" + path); err == nil {
		t.Error("Listen bound over a live daemon's socket")
	}
	ln.Close()

	// A regular file at the path is never deleted.
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Listen("unix:" + path); err == nil {
		t.Error("Listen bound over a regular file")
	}
	if data, err := os.ReadFile(path); err != nil || string(data) != "precious" {
		t.Errorf("Listen damaged a non-socket file: %q, %v", data, err)
	}
}

// TestClientWriteDeadlineOnStall: a daemon that stops consuming cannot
// block the sender — the per-frame write deadline trips, the client
// degrades, and the program completes (satellite: the old client armed
// only a read deadline for the result).
func TestClientWriteDeadlineOnStall(t *testing.T) {
	addr, _ := startServer(t, ServerConfig{})
	mod, plans := kernelPlans(t, "fft")

	ij := inject.NewNetInjector(inject.NetFaultPlan{
		Kind: inject.NetStall, AfterFrames: 3, Stall: 400 * time.Millisecond,
	})
	client, err := Dial(addr, ClientConfig{
		Program: "fft", NumThreads: testThreads, Plans: plans,
		WriteTimeout:  50 * time.Millisecond,
		ResultTimeout: 2 * time.Second,
		WrapConn:      ij.Wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := interp.Run(mod, interp.Options{
		Threads: testThreads, Mode: interp.MonitorActive, Plans: plans, Sink: client,
	})
	if err != nil {
		t.Fatalf("program did not complete past the stalled write: %v", err)
	}
	client.Close()

	if !ij.Fired() {
		t.Fatalf("stall never fired (frames=%d)", ij.Frames())
	}
	if !res.Clean() {
		t.Errorf("program trapped: %+v", res.Traps)
	}
	if res.MonitorHealth != monitor.Degraded {
		t.Errorf("health = %v, want Degraded after a stalled write", res.MonitorHealth)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("run took %v — sender blocked on the stalled daemon", elapsed)
	}
}

// TestDialRetryBackoff: the constructor retries a daemon that comes up
// late, within its attempt budget.
func TestDialRetryBackoff(t *testing.T) {
	// Reserve an address, then free it so the first dial attempts fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	// Bring the daemon up shortly after the first failure.
	go func() {
		time.Sleep(50 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial below will fail the test
		}
		srv := NewServer(ServerConfig{})
		go srv.Serve(ln2)
	}()

	_, plans := kernelPlans(t, "fft")
	client, err := Dial(addr, ClientConfig{
		Program: "late", NumThreads: testThreads, Plans: plans,
		Retry: RetryConfig{Attempts: 20, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("dial retry never reached the late daemon: %v", err)
	}
	client.Close()

	// Without retries, a dead address fails immediately.
	lnDead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := lnDead.Addr().String()
	lnDead.Close()
	if _, err := Dial(deadAddr, ClientConfig{Program: "x", NumThreads: 1, Plans: plans}); err == nil {
		t.Error("dial to a dead daemon with no spool succeeded")
	}
}

// TestRetryBackoffSchedule: delays double from BaseDelay, cap at
// MaxDelay, and stay within the jitter envelope.
func TestRetryBackoffSchedule(t *testing.T) {
	rc := RetryConfig{
		Attempts: 8, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond, Jitter: 0.2, Seed: 42,
	}.withDefaults()
	rng := rand.New(rand.NewSource(rc.Seed))
	for attempt := 1; attempt <= 8; attempt++ {
		ideal := rc.BaseDelay << (attempt - 1)
		if ideal > rc.MaxDelay || ideal <= 0 {
			ideal = rc.MaxDelay
		}
		d := rc.backoff(rng, attempt)
		lo := time.Duration(float64(ideal) * 0.8)
		hi := time.Duration(float64(ideal) * 1.2)
		if d < lo || d > hi {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, lo, hi)
		}
	}
}
