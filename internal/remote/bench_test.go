package remote

import (
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"

	"blockwatch/internal/core"
	"blockwatch/internal/monitor"
)

// BenchmarkRemoteLoopback measures the full out-of-process event path —
// Sender batching, relay drain, wire encode, loopback TCP, server
// decode, monitor checking — in events/op, with the disk spool off
// (the plain client) and on (every frame teed to a bounded file, the
// self-healing configuration). The stream is a consistent shared-branch
// pattern, so the run must end with zero violations and a Healthy
// client.
func BenchmarkRemoteLoopback(b *testing.B) {
	b.Run("spool=off", func(b *testing.B) { benchLoopback(b, false) })
	b.Run("spool=on", func(b *testing.B) { benchLoopback(b, true) })
}

func benchLoopback(b *testing.B, spoolOn bool) {
	const threads = 2
	_, plans := kernelPlans(b, "fft")
	branchID := sharedBranch(b, plans)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(ServerConfig{})
	go srv.Serve(ln)
	defer srv.Close()

	cfg := ClientConfig{
		Program: "bench", NumThreads: threads, Plans: plans,
	}
	if spoolOn {
		cfg.SpoolPath = filepath.Join(b.TempDir(), "bench.spool")
		cfg.SpoolMaxBytes = 1 << 30 // never overflow under -benchtime
	}
	client, err := Dial(ln.Addr().String(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	client.Start()
	senders := make([]*monitor.Sender, threads)
	for tid := range senders {
		senders[tid] = client.Sender(tid)
	}

	const genLen = 256 // events per thread per generation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := uint64(i % genLen)
		for tid := 0; tid < threads; tid++ {
			senders[tid].Send(monitor.Event{
				Kind: monitor.EvBranch, Thread: int32(tid), BranchID: int32(branchID),
				Key1: key, Key2: 1, Sig: 7, Taken: true,
			})
		}
		if key == genLen-1 {
			for tid := 0; tid < threads; tid++ {
				senders[tid].Send(monitor.Event{Kind: monitor.EvFlush, Thread: int32(tid)})
			}
		}
	}
	b.StopTimer()
	for tid := 0; tid < threads; tid++ {
		senders[tid].Send(monitor.Event{Kind: monitor.EvDone, Thread: int32(tid)})
	}
	client.Close()
	if client.Detected() {
		b.Fatal("consistent stream produced a violation")
	}
	if client.Health() != monitor.Healthy {
		b.Fatalf("health = %v, want Healthy", client.Health())
	}
	b.ReportMetric(float64(threads), "events/op")
}

// sharedBranch returns a checked shared branch of the kernel's plan
// table (the branch every bench thread reports consistently).
func sharedBranch(b *testing.B, plans map[int]*core.CheckPlan) int {
	b.Helper()
	for id, p := range plans {
		if p.Checked() && p.Kind == core.CheckShared {
			return id
		}
	}
	b.Fatal("plan table has no shared checked branch")
	return -1
}

// BenchmarkServerSessions is the daemon scaling grid: concurrent
// sessions × threads per session, over loopback TCP and a unix socket.
// One op is one branch event on every thread of every session, so
// ns/op is the whole-daemon cost per event round across the fleet;
// events/op reports the fan-out. Every session must finish Healthy and
// violation-free.
func BenchmarkServerSessions(b *testing.B) {
	_, plans := kernelPlans(b, "fft")
	branchID := sharedBranch(b, plans)
	for _, transport := range []string{"tcp", "unix"} {
		for _, sessions := range []int{1, 4} {
			for _, threads := range []int{1, 4} {
				name := fmt.Sprintf("net=%s/sessions=%d/threads=%d", transport, sessions, threads)
				b.Run(name, func(b *testing.B) {
					benchServerSessions(b, transport, sessions, threads, plans, branchID)
				})
			}
		}
	}
}

func benchServerSessions(b *testing.B, transport string, sessions, threads int, plans map[int]*core.CheckPlan, branchID int) {
	var ln net.Listener
	var err error
	switch transport {
	case "tcp":
		ln, err = net.Listen("tcp", "127.0.0.1:0")
	case "unix":
		ln, err = Listen("unix:" + filepath.Join(b.TempDir(), "bench.sock"))
	}
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(ServerConfig{})
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	clients := make([]*Client, sessions)
	sendTables := make([][]*monitor.Sender, sessions)
	for s := range clients {
		client, err := Dial(addr, ClientConfig{
			Program: fmt.Sprintf("bench-%d", s), NumThreads: threads, Plans: plans,
		})
		if err != nil {
			b.Fatal(err)
		}
		client.Start()
		clients[s] = client
		sendTables[s] = make([]*monitor.Sender, threads)
		for tid := range sendTables[s] {
			sendTables[s][tid] = client.Sender(tid)
		}
	}

	const genLen = 256 // events per thread per generation
	iters := b.N/sessions + 1
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(senders []*monitor.Sender) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := uint64(i % genLen)
				for tid := 0; tid < threads; tid++ {
					senders[tid].Send(monitor.Event{
						Kind: monitor.EvBranch, Thread: int32(tid), BranchID: int32(branchID),
						Key1: key, Key2: 1, Sig: 7, Taken: true,
					})
				}
				if key == genLen-1 {
					for tid := 0; tid < threads; tid++ {
						senders[tid].Send(monitor.Event{Kind: monitor.EvFlush, Thread: int32(tid)})
					}
				}
			}
		}(sendTables[s])
	}
	wg.Wait()
	b.StopTimer()
	for s, client := range clients {
		for tid := 0; tid < threads; tid++ {
			sendTables[s][tid].Send(monitor.Event{Kind: monitor.EvDone, Thread: int32(tid)})
		}
		client.Close()
		if client.Detected() {
			b.Fatal("consistent stream produced a violation")
		}
		if client.Health() != monitor.Healthy {
			b.Fatalf("session %d health = %v, want Healthy", s, client.Health())
		}
	}
	b.ReportMetric(float64(sessions*threads), "events/op")
}
