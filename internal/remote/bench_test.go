package remote

import (
	"net"
	"path/filepath"
	"testing"

	"blockwatch/internal/core"
	"blockwatch/internal/monitor"
)

// BenchmarkRemoteLoopback measures the full out-of-process event path —
// Sender batching, relay drain, wire encode, loopback TCP, server
// decode, monitor checking — in events/op, with the disk spool off
// (the plain client) and on (every frame teed to a bounded file, the
// self-healing configuration). The stream is a consistent shared-branch
// pattern, so the run must end with zero violations and a Healthy
// client.
func BenchmarkRemoteLoopback(b *testing.B) {
	b.Run("spool=off", func(b *testing.B) { benchLoopback(b, false) })
	b.Run("spool=on", func(b *testing.B) { benchLoopback(b, true) })
}

func benchLoopback(b *testing.B, spoolOn bool) {
	const threads = 2
	_, plans := kernelPlans(b, "fft")
	branchID := -1
	for id, p := range plans {
		if p.Checked() && p.Kind == core.CheckShared {
			branchID = id
			break
		}
	}
	if branchID < 0 {
		b.Fatal("fft has no shared checked branch")
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(ServerConfig{})
	go srv.Serve(ln)
	defer srv.Close()

	cfg := ClientConfig{
		Program: "bench", NumThreads: threads, Plans: plans,
	}
	if spoolOn {
		cfg.SpoolPath = filepath.Join(b.TempDir(), "bench.spool")
		cfg.SpoolMaxBytes = 1 << 30 // never overflow under -benchtime
	}
	client, err := Dial(ln.Addr().String(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	client.Start()
	senders := make([]*monitor.Sender, threads)
	for tid := range senders {
		senders[tid] = client.Sender(tid)
	}

	const genLen = 256 // events per thread per generation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := uint64(i % genLen)
		for tid := 0; tid < threads; tid++ {
			senders[tid].Send(monitor.Event{
				Kind: monitor.EvBranch, Thread: int32(tid), BranchID: int32(branchID),
				Key1: key, Key2: 1, Sig: 7, Taken: true,
			})
		}
		if key == genLen-1 {
			for tid := 0; tid < threads; tid++ {
				senders[tid].Send(monitor.Event{Kind: monitor.EvFlush, Thread: int32(tid)})
			}
		}
	}
	b.StopTimer()
	for tid := 0; tid < threads; tid++ {
		senders[tid].Send(monitor.Event{Kind: monitor.EvDone, Thread: int32(tid)})
	}
	client.Close()
	if client.Detected() {
		b.Fatal("consistent stream produced a violation")
	}
	if client.Health() != monitor.Healthy {
		b.Fatalf("health = %v, want Healthy", client.Health())
	}
	b.ReportMetric(float64(threads), "events/op")
}
