package remote

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"blockwatch/internal/core"
	"blockwatch/internal/monitor"
	"blockwatch/internal/wire"
)

// TestServerIngestZeroAlloc is the CI alloc ceiling for the daemon's
// event-frame path: decode-into on a pooled reader, SendBatch into the
// session monitor, drain, and barrier close — the whole per-frame ingest
// pipeline — must not allocate once warm. AllocsPerRun counts every
// goroutine's mallocs, so the monitor side of the pipeline is inside the
// measurement, exactly as in a live session.
func TestServerIngestZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc gate runs in the non-race jobs")
	}
	const threads = 2
	plans := map[int]*core.CheckPlan{
		1: {BranchID: 1, Kind: core.CheckShared, Reason: core.ReasonChecked},
	}
	mon, err := monitor.New(monitor.Config{NumThreads: threads, Plans: plans})
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()
	defer mon.Close()
	senders := make([]monitor.Sender, threads)
	for tid := range senders {
		mon.BindSender(&senders[tid], tid)
	}

	// One barrier generation on the wire: an events frame and a flush
	// marker per thread, as the client's relay would emit them.
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	for tid := 0; tid < threads; tid++ {
		evs := make([]monitor.Event, 64)
		for k := range evs {
			evs[k] = monitor.Event{Kind: monitor.EvBranch, Thread: int32(tid),
				BranchID: 1, Key1: 1000, Key2: uint64(k), Sig: 5, Taken: true}
		}
		if err := w.WriteEvents(tid, evs); err != nil {
			t.Fatal(err)
		}
		if err := w.WriteFlush(tid, int32(tid)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	br := bytes.NewReader(data)
	rd := wire.NewReader(br)
	var f wire.Frame
	ingest := func() {
		start := mon.Stats().Flushes
		br.Reset(data)
		rd.Reset(br)
		for {
			if err := rd.ReadFrameInto(&f); err != nil {
				if err != io.EOF {
					t.Fatal(err)
				}
				break
			}
			switch f.Type {
			case wire.FrameEvents:
				senders[f.Slot].SendBatch(f.Events)
			case wire.FrameFlush:
				senders[f.Slot].Send(monitor.Event{Kind: monitor.EvFlush, Thread: f.Thread})
			}
		}
		for mon.Stats().Flushes == start {
			runtime.Gosched()
		}
	}
	for i := 0; i < 3; i++ {
		ingest() // warm the decode scratch, table, and instance pool
	}
	if avg := testing.AllocsPerRun(50, ingest); avg != 0 {
		t.Errorf("steady-state ingest allocates %.1f times per generation, want 0", avg)
	}
	for tid := range senders {
		senders[tid].Send(monitor.Event{Kind: monitor.EvDone, Thread: int32(tid)})
	}
	mon.Close()
	if mon.Detected() {
		t.Fatalf("identical streams produced violations: %v", mon.Violations())
	}
}
