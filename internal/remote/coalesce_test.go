package remote

import (
	"fmt"
	"testing"

	"blockwatch/internal/core"
	"blockwatch/internal/inject"
	"blockwatch/internal/interp"
	"blockwatch/internal/ir"
	"blockwatch/internal/metrics"
	"blockwatch/internal/monitor"
)

// runRemoteCfg is runRemote with a caller-shaped ClientConfig (the
// coalescing tests vary CoalesceBytes; cfg.Program/NumThreads/Plans are
// filled in here).
func runRemoteCfg(t testing.TB, addr, name string, mod *ir.Module, plans map[int]*core.CheckPlan, fault *inject.Fault, cfg ClientConfig) *interp.Result {
	t.Helper()
	cfg.Program, cfg.NumThreads, cfg.Plans = name, testThreads, plans
	client, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	opts := interp.Options{Threads: testThreads, Mode: interp.MonitorActive, Plans: plans, Sink: client}
	if fault != nil {
		opts.Fault = inject.NewSingle(*fault)
	}
	res, err := interp.Run(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCoalescingMatchesInProcess sweeps coalescing budgets — disabled,
// tiny (flushing almost every relay batch), default, and large — and
// requires the byte-identical-verdict contract to hold for every one,
// clean and under an injected fault. Frame boundaries are the only thing
// coalescing may change.
func TestCoalescingMatchesInProcess(t *testing.T) {
	addr, _ := startServer(t, ServerConfig{})
	mod, plans := kernelPlans(t, "fft")
	clean := runInProcess(t, mod, plans, nil)
	if clean.Detected {
		t.Fatal("clean run detected a violation (false positive)")
	}
	fault := &inject.Fault{Type: inject.BranchFlip, Thread: 1, Seq: clean.BranchCounts[1] / 2}
	faulty := runInProcess(t, mod, plans, fault)

	for _, budget := range []int{-1, 64, 0, 1 << 16} {
		label := fmt.Sprintf("budget=%d", budget)
		cfg := ClientConfig{CoalesceBytes: budget}
		compareRuns(t, label+"/clean", clean, runRemoteCfg(t, addr, "fft", mod, plans, nil, cfg))
		compareRuns(t, label+"/fault", faulty, runRemoteCfg(t, addr, "fft", mod, plans, fault, cfg))
	}
}

// TestCoalescingReducesFrames pins the point of the coalescer: against
// two daemons with separate metric registries, the same program must
// reach the server in strictly fewer wire frames when coalescing is on
// than with it disabled — with the verdict (asserted Healthy and
// violation-free on both sides by compareRuns) unchanged.
func TestCoalescingReducesFrames(t *testing.T) {
	rxFrames := func(coalesceBytes int) uint64 {
		reg := metrics.NewRegistry()
		addr, _ := startServer(t, ServerConfig{Metrics: reg})
		mod, plans := kernelPlans(t, "fft")
		local := runInProcess(t, mod, plans, nil)
		remote := runRemoteCfg(t, addr, "fft", mod, plans, nil, ClientConfig{CoalesceBytes: coalesceBytes})
		compareRuns(t, fmt.Sprintf("coalesce=%d", coalesceBytes), local, remote)
		return reg.Counter("bw_wire_rx_frames_total", "frames decoded from the wire or trace").Value()
	}
	off := rxFrames(-1)
	on := rxFrames(0)
	if on >= off {
		t.Errorf("coalescing did not reduce frames: %d with coalescing, %d without", on, off)
	}
}

// TestCoalescingFlushesBeforeControl: with an effectively unbounded
// budget the byte trigger never fires, so a lone batch reaches the
// daemon only because control markers (and the finish protocol, and the
// relay's idle hook) flush the coalescer first. A session that never
// fills its budget must still check everything.
func TestCoalescingFlushesBeforeControl(t *testing.T) {
	addr, _ := startServer(t, ServerConfig{})
	plans := map[int]*core.CheckPlan{
		1: {BranchID: 1, Kind: core.CheckShared, Reason: core.ReasonChecked},
	}
	client, err := Dial(addr, ClientConfig{
		Program: "idle", NumThreads: 1, Plans: plans,
		CoalesceBytes: maxCoalesceBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	client.Start()
	s := client.Sender(0)
	s.Send(monitor.Event{Kind: monitor.EvBranch, Thread: 0, BranchID: 1, Key1: 1, Key2: 1, Sig: 5, Taken: true})
	s.Flush()
	client.Send(monitor.Event{Kind: monitor.EvDone, Thread: 0})
	client.Close()
	if client.Health() != monitor.Healthy {
		t.Errorf("health = %v, want Healthy", client.Health())
	}
	if got := client.Stats().Events; got != 1 {
		t.Errorf("daemon checked %d events, want 1", got)
	}
}
