//go:build !race

package remote

// raceEnabled reports that this test binary was built with -race, whose
// instrumentation allocates and would fail the zero-alloc gates.
const raceEnabled = false
