package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"blockwatch/internal/metrics"
	"blockwatch/internal/monitor"
	"blockwatch/internal/wire"
)

// DefaultMaxThreads bounds the thread count a hello frame may claim; a
// corrupt or hostile header cannot make the server allocate queues for
// millions of threads.
const DefaultMaxThreads = 1 << 10

// ServerConfig configures a monitoring daemon.
type ServerConfig struct {
	// QueueCap overrides each session monitor's per-thread queue
	// capacity (0 = monitor default).
	QueueCap int
	// CheckWorkers shards each session monitor's checking (monitor.Config
	// semantics; detection results are identical for every value).
	CheckWorkers int
	// StallDeadline arms each session monitor's stall watchdog
	// (0 = disabled).
	StallDeadline time.Duration
	// MaxThreads bounds the hello frame's thread count
	// (0 = DefaultMaxThreads).
	MaxThreads int
	// Logf, when non-nil, receives one line per session event (accept,
	// result, error). The daemon points it at its log; tests capture it.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the daemon's session and wire
	// metrics (bw_server_*, bw_wire_rx_*) and is threaded into every
	// session monitor (bw_monitor_*), so one registry aggregates the
	// whole daemon — what the -admin /metrics endpoint scrapes.
	Metrics *metrics.Registry
}

// serverMetrics is the server's handle set (zero value = detached).
type serverMetrics struct {
	sessions   *metrics.Counter // bw_server_sessions_total
	active     *metrics.Gauge   // bw_server_sessions_active
	clean      *metrics.Counter // bw_server_sessions_clean_total
	events     *metrics.Counter // bw_server_session_events_total
	violations *metrics.Counter // bw_server_violations_total
}

func newServerMetrics(r *metrics.Registry) serverMetrics {
	if r == nil {
		return serverMetrics{}
	}
	return serverMetrics{
		sessions: r.Counter("bw_server_sessions_total",
			"monitoring sessions handled (including rejected and unclean)"),
		active: r.Gauge("bw_server_sessions_active",
			"monitoring sessions currently streaming"),
		clean: r.Counter("bw_server_sessions_clean_total",
			"sessions that completed the finish/result exchange"),
		events: r.Counter("bw_server_session_events_total",
			"branch events checked across finished sessions"),
		violations: r.Counter("bw_server_violations_total",
			"violations detected across finished sessions"),
	}
}

// SessionInfo summarizes one finished monitoring session.
type SessionInfo struct {
	Program    string
	Threads    int
	Violations int
	Health     monitor.HealthState
	Stats      monitor.Stats
	// Clean reports whether the session ended with the finish/result
	// exchange (false: the connection dropped mid-stream).
	Clean bool
}

// Server accepts monitoring connections and runs one in-process
// monitor.Monitor per connection, fed from the decoded event stream.
// Sessions are independent: many programs stream concurrently.
type Server struct {
	cfg ServerConfig
	met serverMetrics

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
	sessions atomic.Uint64
}

// NewServer builds a server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = DefaultMaxThreads
	}
	return &Server{cfg: cfg, met: newServerMetrics(cfg.Metrics), conns: make(map[net.Conn]struct{})}
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("remote: server closed")

// Listen resolves addr with the same syntax as Dial (SplitAddr) and
// returns a listener for Serve.
func Listen(addr string) (net.Listener, error) {
	network, address := SplitAddr(addr)
	return net.Listen(network, address)
}

// Serve accepts connections on ln until Close, handling each session in
// its own goroutine. It returns ErrServerClosed after Close, or the
// accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes every live session connection, and waits
// for the session goroutines (and their monitors) to wind down.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// Sessions returns the number of sessions handled so far (including
// unclean ones).
func (s *Server) Sessions() uint64 { return s.sessions.Load() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// handle runs one monitoring session: hello, event stream, finish,
// result. Sessions are isolated — a malformed stream only ends its own
// session (the monitor still closes and checks what it received).
func (s *Server) handle(conn net.Conn) {
	defer s.sessions.Add(1)
	s.met.sessions.Inc()
	s.met.active.Add(1)
	defer s.met.active.Add(-1)
	rd := wire.NewReader(conn)
	rd.InstrumentRx(s.cfg.Metrics)
	f, err := rd.ReadFrame()
	if err != nil {
		s.logf("session rejected: reading hello: %v", err)
		return
	}
	if f.Type != wire.FrameHello {
		s.logf("session rejected: first frame is type 0x%02x, not hello", f.Type)
		return
	}
	hello := f.Hello
	if hello.Threads < 1 || hello.Threads > s.cfg.MaxThreads {
		s.logf("session rejected: %q claims %d threads (max %d)", hello.Program, hello.Threads, s.cfg.MaxThreads)
		return
	}
	mon, err := monitor.New(monitor.Config{
		NumThreads:    hello.Threads,
		Plans:         hello.PlanTable(),
		QueueCap:      s.cfg.QueueCap,
		CheckWorkers:  s.cfg.CheckWorkers,
		StallDeadline: s.cfg.StallDeadline,
		Metrics:       s.cfg.Metrics,
	})
	if err != nil {
		s.logf("session rejected: %q: monitor: %v", hello.Program, err)
		return
	}
	s.logf("session start: %q, %d threads, %d plans", hello.Program, hello.Threads, len(hello.Plans))
	mon.Start()

	// The read loop is the single producer for every per-thread queue of
	// this session's monitor, so the SPSC contract holds; per-slot
	// Senders rebatch the decoded events.
	senders := make([]*monitor.Sender, hello.Threads)
	for tid := range senders {
		senders[tid] = mon.Sender(tid)
	}
	info := SessionInfo{Program: hello.Program, Threads: hello.Threads}
	defer func() {
		if info.Clean {
			s.met.clean.Inc()
		}
		s.met.events.Add(info.Stats.Events)
		s.met.violations.Add(uint64(info.Violations))
		s.logf("session end: %q clean=%t violations=%d health=%s",
			info.Program, info.Clean, info.Violations, info.Health)
	}()

	sender := func(slot int) *monitor.Sender {
		if slot < 0 || slot >= len(senders) {
			// Out-of-range slot in a corrupt frame: quarantine through the
			// monitor's own fail-open path (a Sender for an invalid tid
			// counts and discards).
			return mon.Sender(-1)
		}
		return senders[slot]
	}
	for {
		f, err := rd.ReadFrame()
		if err != nil {
			// Connection lost or stream corrupt mid-run: close the monitor
			// (checking everything received so far) and end the session.
			// The client side fails open on its own.
			if err != io.EOF {
				s.logf("session %q: stream error: %v", info.Program, err)
			}
			mon.Close()
			fillSession(&info, mon, false)
			return
		}
		switch f.Type {
		case wire.FrameEvents:
			sd := sender(f.Slot)
			for i := range f.Events {
				sd.Send(f.Events[i])
			}
		case wire.FrameFlush:
			sender(f.Slot).Send(monitor.Event{Kind: monitor.EvFlush, Thread: f.Thread})
		case wire.FrameDone:
			sender(f.Slot).Send(monitor.Event{Kind: monitor.EvDone, Thread: f.Thread})
		case wire.FrameFinish:
			mon.Close()
			fillSession(&info, mon, true)
			res := &wire.Result{
				Health:     mon.Health(),
				Stats:      mon.Stats(),
				Violations: mon.Violations(),
			}
			wr := wire.NewWriter(conn)
			if err := wr.WriteResult(res); err == nil {
				err = wr.Sync()
				if err != nil {
					s.logf("session %q: writing result: %v", info.Program, err)
				}
			} else {
				s.logf("session %q: writing result: %v", info.Program, err)
			}
			return
		default:
			// Hello mid-stream or an unknown-but-valid frame: protocol
			// violation; end the session defensively.
			s.logf("session %q: unexpected frame type 0x%02x", info.Program, f.Type)
			mon.Close()
			fillSession(&info, mon, false)
			return
		}
	}
}

func fillSession(info *SessionInfo, mon *monitor.Monitor, clean bool) {
	info.Clean = clean
	info.Violations = len(mon.Violations())
	info.Health = mon.Health()
	info.Stats = mon.Stats()
}

// ListenAndServe listens on addr (Dial syntax) and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := Listen(addr)
	if err != nil {
		return fmt.Errorf("remote: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}
