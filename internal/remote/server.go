package remote

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"blockwatch/internal/metrics"
	"blockwatch/internal/monitor"
	"blockwatch/internal/wire"
)

// DefaultMaxThreads bounds the thread count a hello frame may claim; a
// corrupt or hostile header cannot make the server allocate queues for
// millions of threads.
const DefaultMaxThreads = 1 << 10

// DefaultServerWriteTimeout bounds the server's writes (result and
// reject frames) so a dead client cannot wedge a session goroutine.
const DefaultServerWriteTimeout = 10 * time.Second

// ServerConfig configures a monitoring daemon.
type ServerConfig struct {
	// QueueCap overrides each session monitor's per-thread queue
	// capacity (0 = monitor default).
	QueueCap int
	// CheckWorkers shards each session monitor's checking (monitor.Config
	// semantics; detection results are identical for every value).
	CheckWorkers int
	// StallDeadline arms each session monitor's stall watchdog
	// (0 = disabled).
	StallDeadline time.Duration
	// MaxThreads bounds the hello frame's thread count
	// (0 = DefaultMaxThreads).
	MaxThreads int
	// MaxConns bounds concurrent sessions (0 = unlimited). A connection
	// accepted past the limit gets a polite reject frame with a reason,
	// then is closed; the client treats it as a retryable transport
	// fault.
	MaxConns int
	// IdleTimeout is the per-frame read deadline on a session connection
	// (0 = none: monitored programs may legitimately compute for a long
	// time between events). When set, a connection silent past it ends
	// its session, checking what was received.
	IdleTimeout time.Duration
	// WriteTimeout bounds the server's result/reject frame writes
	// (0 = DefaultServerWriteTimeout, negative = none).
	WriteTimeout time.Duration
	// Logf, when non-nil, receives one line per session event (accept,
	// result, error). The daemon points it at its log; tests capture it.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the daemon's session and wire
	// metrics (bw_server_*, bw_wire_rx_*) and is threaded into every
	// session monitor (bw_monitor_*), so one registry aggregates the
	// whole daemon — what the -admin /metrics endpoint scrapes.
	Metrics *metrics.Registry
}

// serverMetrics is the server's handle set (zero value = detached).
type serverMetrics struct {
	sessions   *metrics.Counter // bw_server_sessions_total
	active     *metrics.Gauge   // bw_server_sessions_active
	clean      *metrics.Counter // bw_server_sessions_clean_total
	events     *metrics.Counter // bw_server_session_events_total
	violations *metrics.Counter // bw_server_violations_total
	rejected   *metrics.Counter // bw_server_rejected_total
	draining   *metrics.Gauge   // bw_server_draining
}

func newServerMetrics(r *metrics.Registry) serverMetrics {
	if r == nil {
		return serverMetrics{}
	}
	return serverMetrics{
		sessions: r.Counter("bw_server_sessions_total",
			"monitoring sessions handled (including rejected and unclean)"),
		active: r.Gauge("bw_server_sessions_active",
			"monitoring sessions currently streaming"),
		clean: r.Counter("bw_server_sessions_clean_total",
			"sessions that completed the finish/result exchange"),
		events: r.Counter("bw_server_session_events_total",
			"branch events checked across finished sessions"),
		violations: r.Counter("bw_server_violations_total",
			"violations detected across finished sessions"),
		rejected: r.Counter("bw_server_rejected_total",
			"connections refused at the -maxconns session limit"),
		draining: r.Gauge("bw_server_draining",
			"1 while the server is draining (stopped accepting, finishing live sessions)"),
	}
}

// SessionInfo summarizes one finished monitoring session.
type SessionInfo struct {
	Program    string
	Threads    int
	Violations int
	Health     monitor.HealthState
	Stats      monitor.Stats
	// Clean reports whether the session ended with the finish/result
	// exchange (false: the connection dropped mid-stream).
	Clean bool
}

// Server accepts monitoring connections and runs one in-process
// monitor.Monitor per connection, fed from the decoded event stream.
// Sessions are independent: many programs stream concurrently.
type Server struct {
	cfg ServerConfig
	met serverMetrics

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	draining bool
	wg       sync.WaitGroup
	sessions atomic.Uint64
	rejected atomic.Uint64
}

// NewServer builds a server.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = DefaultMaxThreads
	}
	return &Server{cfg: cfg, met: newServerMetrics(cfg.Metrics), conns: make(map[net.Conn]struct{})}
}

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("remote: server closed")

// Listen resolves addr with the same syntax as Dial (SplitAddr) and
// returns a listener for Serve. A stale unix socket file — left behind
// by a killed daemon — is detected (nothing answers a dial) and
// unlinked, so a restart never fails on a leftover; a socket with a
// live daemon behind it is a real address conflict and errors.
func Listen(addr string) (net.Listener, error) {
	network, address := SplitAddr(addr)
	if network == "unix" {
		if err := cleanStaleSocket(address); err != nil {
			return nil, err
		}
	}
	return net.Listen(network, address)
}

// cleanStaleSocket unlinks address if it is a unix socket file no
// daemon is listening on. (Go's net package removes the file on a clean
// listener Close; this handles the unclean-death case.)
func cleanStaleSocket(address string) error {
	fi, err := os.Stat(address)
	if err != nil {
		return nil // absent (or unstatable): let net.Listen report it
	}
	if fi.Mode()&os.ModeSocket == 0 {
		return fmt.Errorf("remote: %s exists and is not a socket", address)
	}
	conn, err := net.DialTimeout("unix", address, 250*time.Millisecond)
	if err == nil {
		conn.Close()
		return fmt.Errorf("remote: %s is in use by a running daemon", address)
	}
	if err := os.Remove(address); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("remote: removing stale socket %s: %w", address, err)
	}
	return nil
}

// Serve accepts connections on ln until Close, handling each session in
// its own goroutine. It returns ErrServerClosed after Close, or the
// accept error that stopped it.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed || s.draining
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			live := len(s.conns)
			s.mu.Unlock()
			s.rejected.Add(1)
			s.met.rejected.Inc()
			// Refuse politely off the accept loop; the write is
			// deadline-bounded so a dead client cannot stall it anyway.
			go s.reject(conn, live)
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handle(conn)
		}()
	}
}

// Close stops accepting, closes every live session connection, and waits
// for the session goroutines (and their monitors) to wind down.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// Drain gracefully shuts the server down: stop accepting, let live
// sessions finish within the timeout, then force-close whatever
// remains. Draining() (and an adminhttp health hook pointed at it)
// reports the intermediate state. Drain blocks until shutdown is
// complete; calling it on a closed or already-draining server just
// waits.
func (s *Server) Drain(timeout time.Duration) {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	s.met.draining.Set(1)
	if ln != nil {
		ln.Close() // Serve returns ErrServerClosed; no new sessions
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
	}
	s.Close()
	s.met.draining.Set(0)
}

// Draining reports whether the server is between Drain and full
// shutdown: not accepting, finishing live sessions.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining && !s.closed
}

// reject writes the polite at-capacity refusal and closes the
// connection.
func (s *Server) reject(conn net.Conn, live int) {
	defer conn.Close()
	if wt := s.writeTimeout(); wt > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(wt))
	}
	wr := wire.NewWriter(conn)
	reason := fmt.Sprintf("daemon at capacity (%d sessions, -maxconns %d)", live, s.cfg.MaxConns)
	if err := wr.WriteReject(reason); err == nil {
		err = wr.Sync()
		if err != nil {
			s.logf("rejecting session: %v", err)
		}
	}
	s.logf("session refused: %s", reason)
}

func (s *Server) writeTimeout() time.Duration {
	if s.cfg.WriteTimeout == 0 {
		return DefaultServerWriteTimeout
	}
	if s.cfg.WriteTimeout < 0 {
		return 0
	}
	return s.cfg.WriteTimeout
}

// Sessions returns the number of sessions handled so far (including
// unclean ones).
func (s *Server) Sessions() uint64 { return s.sessions.Load() }

// Rejected returns the number of connections refused at the MaxConns
// limit.
func (s *Server) Rejected() uint64 { return s.rejected.Load() }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// sessionScratch is the per-session state a busy daemon churns through:
// the wire reader (with its retained payload scratch), the decoded frame
// (with its event scratch), and the per-thread sender table (with each
// sender's batch buffer). Pooled across sessions so steady-state session
// turnover reuses warmed buffers and the per-frame ingest path — decode
// into the frame scratch, PushBatch into the session monitor — allocates
// nothing.
type sessionScratch struct {
	rd      *wire.Reader
	frame   wire.Frame
	senders []monitor.Sender
}

var scratchPool = sync.Pool{
	New: func() any { return &sessionScratch{rd: wire.NewReader(nil)} },
}

// release unpins session-lifetime objects (connection, monitor, hello)
// and returns the scratch — buffers intact — to the pool.
func (sc *sessionScratch) release() {
	sc.rd.Reset(nil)
	sc.frame = wire.Frame{Events: sc.frame.Events[:0]}
	for i := range sc.senders {
		sc.senders[i].Unbind()
	}
	scratchPool.Put(sc)
}

// handle runs one monitoring session: hello, event stream, finish,
// result. Sessions are isolated — a malformed stream only ends its own
// session (the monitor still closes and checks what it received).
func (s *Server) handle(conn net.Conn) {
	defer s.sessions.Add(1)
	s.met.sessions.Inc()
	s.met.active.Add(1)
	defer s.met.active.Add(-1)
	sc := scratchPool.Get().(*sessionScratch)
	defer sc.release()
	rd := sc.rd
	rd.Reset(conn)
	rd.InstrumentRx(s.cfg.Metrics)
	// armRead re-arms the per-frame read deadline: a connection that goes
	// silent past IdleTimeout ends its session instead of pinning a
	// goroutine and a monitor forever.
	armRead := func() {
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
	}
	armRead()
	if err := rd.ReadFrameInto(&sc.frame); err != nil {
		s.logf("session rejected: reading hello: %v", err)
		return
	}
	if sc.frame.Type != wire.FrameHello {
		s.logf("session rejected: first frame is type 0x%02x, not hello", sc.frame.Type)
		return
	}
	hello := sc.frame.Hello
	if hello.Threads < 1 || hello.Threads > s.cfg.MaxThreads {
		s.logf("session rejected: %q claims %d threads (max %d)", hello.Program, hello.Threads, s.cfg.MaxThreads)
		return
	}
	mon, err := monitor.New(monitor.Config{
		NumThreads:    hello.Threads,
		Plans:         hello.PlanTable(),
		QueueCap:      s.cfg.QueueCap,
		CheckWorkers:  s.cfg.CheckWorkers,
		StallDeadline: s.cfg.StallDeadline,
		Metrics:       s.cfg.Metrics,
	})
	if err != nil {
		s.logf("session rejected: %q: monitor: %v", hello.Program, err)
		return
	}
	s.logf("session start: %q, %d threads, %d plans", hello.Program, hello.Threads, len(hello.Plans))
	mon.Start()

	// The read loop is the single producer for every per-thread queue of
	// this session's monitor, so the SPSC contract holds; per-slot
	// Senders hand decoded event frames to the monitor through PushBatch.
	// The sender table (and each sender's buffer) comes from the pooled
	// scratch, rebound to this session's monitor.
	if cap(sc.senders) < hello.Threads {
		sc.senders = append(sc.senders[:cap(sc.senders)],
			make([]monitor.Sender, hello.Threads-cap(sc.senders))...)
	}
	sc.senders = sc.senders[:hello.Threads]
	senders := sc.senders
	for tid := range senders {
		mon.BindSender(&senders[tid], tid)
	}
	// quar counts events from corrupt out-of-range slots through the
	// monitor's own fail-open path; bound lazily (corruption is rare).
	var quar *monitor.Sender
	info := SessionInfo{Program: hello.Program, Threads: hello.Threads}
	defer func() {
		if info.Clean {
			s.met.clean.Inc()
		}
		s.met.events.Add(info.Stats.Events)
		s.met.violations.Add(uint64(info.Violations))
		s.logf("session end: %q clean=%t violations=%d health=%s",
			info.Program, info.Clean, info.Violations, info.Health)
	}()

	sender := func(slot int) *monitor.Sender {
		if slot < 0 || slot >= len(senders) {
			// Out-of-range slot in a corrupt frame: quarantine through the
			// monitor's own fail-open path (a Sender for an invalid tid
			// counts and discards).
			if quar == nil {
				quar = mon.Sender(-1)
			}
			return quar
		}
		return &senders[slot]
	}
	f := &sc.frame
	for {
		armRead()
		if err := rd.ReadFrameInto(f); err != nil {
			// Connection lost or stream corrupt mid-run: close the monitor
			// (checking everything received so far) and end the session.
			// The client side fails open on its own.
			if err != io.EOF {
				s.logf("session %q: stream error: %v", info.Program, err)
			}
			mon.Close()
			fillSession(&info, mon, false)
			return
		}
		switch f.Type {
		case wire.FrameEvents:
			sender(f.Slot).SendBatch(f.Events)
		case wire.FrameFlush:
			sender(f.Slot).Send(monitor.Event{Kind: monitor.EvFlush, Thread: f.Thread})
		case wire.FrameDone:
			sender(f.Slot).Send(monitor.Event{Kind: monitor.EvDone, Thread: f.Thread})
		case wire.FrameFinish:
			mon.Close()
			fillSession(&info, mon, true)
			res := &wire.Result{
				Health:     mon.Health(),
				Stats:      mon.Stats(),
				Violations: mon.Violations(),
			}
			if wt := s.writeTimeout(); wt > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(wt))
			}
			wr := wire.NewWriter(conn)
			if err := wr.WriteResult(res); err == nil {
				err = wr.Sync()
				if err != nil {
					s.logf("session %q: writing result: %v", info.Program, err)
				}
			} else {
				s.logf("session %q: writing result: %v", info.Program, err)
			}
			return
		default:
			// Hello mid-stream or an unknown-but-valid frame: protocol
			// violation; end the session defensively.
			s.logf("session %q: unexpected frame type 0x%02x", info.Program, f.Type)
			mon.Close()
			fillSession(&info, mon, false)
			return
		}
	}
}

func fillSession(info *SessionInfo, mon *monitor.Monitor, clean bool) {
	info.Clean = clean
	info.Violations = len(mon.Violations())
	info.Health = mon.Health()
	info.Stats = mon.Stats()
}

// ListenAndServe listens on addr (Dial syntax) and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := Listen(addr)
	if err != nil {
		return fmt.Errorf("remote: listen %s: %w", addr, err)
	}
	return s.Serve(ln)
}
