package remote

import (
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"blockwatch/internal/core"
	"blockwatch/internal/inject"
	"blockwatch/internal/interp"
	"blockwatch/internal/ir"
	"blockwatch/internal/monitor"
	"blockwatch/internal/splash"
)

const testThreads = 4

// kernelPlans compiles and analyzes one SPLASH kernel.
func kernelPlans(t testing.TB, name string) (*ir.Module, map[int]*core.CheckPlan) {
	t.Helper()
	prog, err := splash.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := prog.Compile()
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(mod, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return mod, a.Plans
}

// startServer serves on an ephemeral loopback TCP listener.
func startServer(t testing.TB, cfg ServerConfig) (string, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(cfg)
	go srv.Serve(ln)
	t.Cleanup(srv.Close)
	return ln.Addr().String(), srv
}

// runInProcess is the reference: a run against the ordinary in-process
// monitor.
func runInProcess(t testing.TB, mod *ir.Module, plans map[int]*core.CheckPlan, fault *inject.Fault) *interp.Result {
	t.Helper()
	opts := interp.Options{Threads: testThreads, Mode: interp.MonitorActive, Plans: plans}
	if fault != nil {
		opts.Fault = inject.NewSingle(*fault)
	}
	res, err := interp.Run(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runRemote runs the same program with the monitor on the other side of
// the given daemon address.
func runRemote(t testing.TB, addr, name string, mod *ir.Module, plans map[int]*core.CheckPlan, fault *inject.Fault) *interp.Result {
	t.Helper()
	client, err := Dial(addr, ClientConfig{Program: name, NumThreads: testThreads, Plans: plans})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	opts := interp.Options{Threads: testThreads, Mode: interp.MonitorActive, Plans: plans, Sink: client}
	if fault != nil {
		opts.Fault = inject.NewSingle(*fault)
	}
	res, err := interp.Run(mod, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// compareRuns asserts the acceptance contract: given the same event
// stream, the remote run's detection verdict and violation list (already
// canonically ordered by the checking monitor) are identical to the
// in-process monitor's. A fault that corrupts the program's
// synchronization can make the execution itself scheduling-sensitive —
// then the two runs are different programs and the streams legitimately
// differ, so the comparison is skipped (reported via the return value;
// clean runs never diverge).
func compareRuns(t *testing.T, label string, local, remote *interp.Result) bool {
	t.Helper()
	if !reflect.DeepEqual(local.EventCounts, remote.EventCounts) ||
		!reflect.DeepEqual(local.BranchCounts, remote.BranchCounts) {
		t.Logf("%s: faulty execution diverged under different sink timing (events %v vs %v) — stream comparison skipped",
			label, local.EventCounts, remote.EventCounts)
		return false
	}
	if local.Detected != remote.Detected {
		t.Errorf("%s: Detected: in-process %t, remote %t", label, local.Detected, remote.Detected)
	}
	if !reflect.DeepEqual(local.Violations, remote.Violations) {
		t.Errorf("%s: violations differ\n in-process: %v\n remote:     %v", label, local.Violations, remote.Violations)
	}
	ls, rs := local.MonitorStats, remote.MonitorStats
	if ls.Events != rs.Events || ls.Instances != rs.Instances || ls.Flushes != rs.Flushes {
		t.Errorf("%s: monitor stats differ: in-process %+v, remote %+v", label, ls, rs)
	}
	if remote.MonitorHealth != monitor.Healthy {
		t.Errorf("%s: remote health = %v, want Healthy", label, remote.MonitorHealth)
	}
	return true
}

// TestLoopbackMatchesInProcessAllKernels runs every SPLASH kernel twice
// — in-process monitor and loopback remote monitor — clean and with a
// deterministic injected fault, and requires identical violations. At
// least one faulty run across the suite must actually detect, so the
// equality is not vacuously about empty sets.
func TestLoopbackMatchesInProcessAllKernels(t *testing.T) {
	addr, _ := startServer(t, ServerConfig{})
	anyDetected := false
	for _, name := range splash.Names() {
		mod, plans := kernelPlans(t, name)

		clean := runInProcess(t, mod, plans, nil)
		if clean.Detected {
			t.Fatalf("%s: clean run detected a violation (false positive)", name)
		}
		compareRuns(t, name+"/clean", clean, runRemote(t, addr, name, mod, plans, nil))

		// Sweep a few deterministic fault positions; compare every one and
		// note whether any produced a compared detection.
		for _, frac := range []uint64{2, 3, 5} {
			seq := clean.BranchCounts[1] / frac
			if seq == 0 {
				continue
			}
			fault := &inject.Fault{Type: inject.BranchFlip, Thread: 1, Seq: seq}
			local := runInProcess(t, mod, plans, fault)
			remote := runRemote(t, addr, name, mod, plans, fault)
			if compareRuns(t, fmt.Sprintf("%s/fault@%d", name, seq), local, remote) && local.Detected {
				anyDetected = true
			}
		}
	}
	if !anyDetected {
		t.Error("no injected fault was detected by any kernel — equality checks were vacuous")
	}
}

// TestConcurrentSessions streams three kernels through one daemon at the
// same time; each session's results must still match its own in-process
// reference (clean runs, whose executions are deterministic under any
// scheduling, so a mismatch here means sessions cross-contaminated).
func TestConcurrentSessions(t *testing.T) {
	addr, srv := startServer(t, ServerConfig{})
	names := []string{"fft", "radix", "water-nsquared"}
	var wg sync.WaitGroup
	for _, name := range names {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			mod, plans := kernelPlans(t, name)
			local := runInProcess(t, mod, plans, nil)
			remote := runRemote(t, addr, name, mod, plans, nil)
			if !compareRuns(t, name, local, remote) {
				t.Errorf("%s: clean runs diverged — sessions are not isolated", name)
			}
		}()
	}
	wg.Wait()
	if got := srv.Sessions(); got != uint64(len(names)) {
		t.Errorf("server handled %d sessions, want %d", got, len(names))
	}
}

// TestUnixSocketLoopback exercises the unix-socket transport end to end.
func TestUnixSocketLoopback(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "bwmonitord.sock")
	ln, err := Listen("unix:" + sock)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerConfig{})
	go srv.Serve(ln)
	defer srv.Close()

	mod, plans := kernelPlans(t, "fft")
	local := runInProcess(t, mod, plans, nil)
	remote := runRemote(t, sock, "fft", mod, plans, nil)
	compareRuns(t, "fft/unix", local, remote)
}

// TestClientFailOpenOnServerKill is the kill-the-daemon acceptance test:
// the server accepts the session and then drops the connection, so the
// client's stream dies mid-run. The monitored program must still run to
// completion with Health() = Degraded, and the relay goroutine must not
// leak.
func TestClientFailOpenOnServerKill(t *testing.T) {
	before := runtime.NumGoroutine()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan struct{})
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Read the hello (so NewClient succeeds), then kill the session the
		// way a crashed daemon would.
		buf := make([]byte, 256)
		conn.Read(buf)
		conn.Close()
		close(accepted)
	}()

	mod, plans := kernelPlans(t, "water-nsquared")
	client, err := Dial(ln.Addr().String(), ClientConfig{
		Program: "water-nsquared", NumThreads: testThreads, Plans: plans,
		ResultTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-accepted
	res, err := interp.Run(mod, interp.Options{
		Threads: testThreads, Mode: interp.MonitorActive, Plans: plans, Sink: client,
	})
	if err != nil {
		t.Fatalf("program did not run to completion after daemon death: %v", err)
	}
	client.Close()

	if !res.Clean() {
		t.Errorf("program trapped after daemon death: %+v", res.Traps)
	}
	if res.MonitorHealth != monitor.Degraded {
		t.Errorf("health = %v, want Degraded", res.MonitorHealth)
	}
	if res.Detected {
		t.Error("dead daemon must not produce detections")
	}

	// The relay goroutine must be gone: poll briefly for the count to
	// return to (near) the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: before %d, after %d", before, runtime.NumGoroutine())
}

// TestServerSurvivesGarbageHello: a connection that opens with garbage
// only kills its own session; the daemon keeps serving real clients.
func TestServerSurvivesGarbageHello(t *testing.T) {
	addr, srv := startServer(t, ServerConfig{})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\n\r\n"))
	conn.Close()

	mod, plans := kernelPlans(t, "fft")
	local := runInProcess(t, mod, plans, nil)
	remote := runRemote(t, addr, "fft", mod, plans, nil)
	compareRuns(t, "fft/after-garbage", local, remote)
	_ = srv
}

// TestServerRejectsAbsurdThreadCount: a hello claiming more threads than
// MaxThreads is refused without allocating a monitor.
func TestServerRejectsAbsurdThreadCount(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	addr, _ := startServer(t, ServerConfig{MaxThreads: 8, Logf: func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	_, plans := kernelPlans(t, "fft")
	client, err := Dial(addr, ClientConfig{Program: "big", NumThreads: 9, Plans: plans})
	if err != nil {
		t.Fatal(err) // hello write itself succeeds; rejection is server-side
	}
	client.Start()
	s := client.Sender(0)
	s.Send(monitor.Event{Kind: monitor.EvBranch, Thread: 0, BranchID: 1, Key1: 1, Key2: 1})
	for tid := 0; tid < 9; tid++ {
		client.Send(monitor.Event{Kind: monitor.EvDone, Thread: int32(tid)})
	}
	client.Close()
	if client.Health() == monitor.Healthy {
		t.Error("rejected session still reports Healthy")
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, l := range lines {
		if l == `session rejected: "big" claims 9 threads (max 8)` {
			found = true
		}
	}
	if !found {
		t.Errorf("rejection not logged; log lines: %q", lines)
	}
}

func TestSplitAddr(t *testing.T) {
	cases := []struct {
		in, network, address string
	}{
		{"127.0.0.1:4777", "tcp", "127.0.0.1:4777"},
		{"localhost:9", "tcp", "localhost:9"},
		{"tcp:host:1234", "tcp", "host:1234"},
		{"unix:/tmp/bw.sock", "unix", "/tmp/bw.sock"},
		{"/tmp/bw.sock", "unix", "/tmp/bw.sock"},
		{"./rel/bw.sock", "unix", "./rel/bw.sock"},
	}
	for _, c := range cases {
		network, address := SplitAddr(c.in)
		if network != c.network || address != c.address {
			t.Errorf("SplitAddr(%q) = (%q, %q), want (%q, %q)", c.in, network, address, c.network, c.address)
		}
	}
}
